//! The concurrent serving API: one shared [`DatasetIndex`], many
//! per-request [`Session`]s.
//!
//! The engine of PR 4 ([`crate::engine::HdbscanEngine`]) amortizes the
//! spatial substrate across *sequential* requests, but it is `&mut self`
//! and lifetime-bound to one borrower — one request at a time per dataset.
//! A serving deployment wants T threads answering clustering requests over
//! the same dataset simultaneously. This module splits the engine along
//! the read/write boundary the PANDORA stages already have:
//!
//! * [`DatasetIndex`] — the immutable tier: a validated point set, the
//!   frozen kd-tree with its AoSoA leaf blocks, and sorted k-NN rows wide
//!   enough for every `minPts` up to the freeze ceiling. `Send + Sync`;
//!   wrap it in an [`Arc`] and share it.
//! * [`Session`] — the cheap mutable tier: pooled Borůvka round buffers,
//!   the dendrogram workspace and the endgame cache. Each in-flight
//!   request owns one; finished sessions return their scratch to a
//!   thread-safe pool inside the index, so the steady state allocates
//!   nothing per request.
//! * [`ClusterRequest`] — a typed, validated description of one query.
//!
//! Every entry point is **fallible**: bad datasets and bad parameters come
//! back as [`PandoraError`] values instead of panics, so one malformed
//! request degrades one response, never the process. Results are
//! **bit-identical** to the one-shot [`crate::Hdbscan::run`] path in both
//! serial and threaded contexts (enforced by `tests/serve_concurrent.rs`).
//!
//! ```
//! use std::sync::Arc;
//! use pandora_hdbscan::{ClusterRequest, DatasetIndex};
//! use pandora_mst::PointSet;
//!
//! let mut coords = Vec::new();
//! for i in 0..40 {
//!     coords.extend_from_slice(&[i as f32 * 0.01, 0.0]);
//!     coords.extend_from_slice(&[50.0 + i as f32 * 0.01, 0.0]);
//! }
//! let points = PointSet::try_new(coords, 2)?;
//! let index = Arc::new(DatasetIndex::freeze(points, 8)?);
//!
//! // Any number of threads can hold sessions over the same index.
//! let mut session = index.session();
//! let result = session.run(&ClusterRequest::new().min_pts(4))?;
//! assert_eq!(result.n_clusters(), 2);
//! # Ok::<(), pandora_mst::PandoraError>(())
//! ```

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use pandora_core::{DendrogramBackend, DendrogramWorkspace, Edge, SortedMst};
use pandora_exec::ExecCtx;
use pandora_mst::{
    emst_from_index_with, nnchain_from_index, EmstIndex, EmstScratch, Linkage, MetricKind,
    PandoraError, PointSet,
};

use crate::condensed::condense;
use crate::pipeline::{HdbscanParams, HdbscanResult, StageTimings};
use crate::stability::{cluster_stabilities, extract_labels, select_clusters};

/// One validated clustering request: the per-query parameters of a
/// [`Session::run`].
///
/// Built with a fluent, infallible builder; range validation happens at
/// [`Session::run`] against the concrete index (whether `min_pts` fits the
/// dataset and the freeze ceiling is a property of the pair, not of the
/// request alone).
///
/// ```
/// use pandora_hdbscan::ClusterRequest;
///
/// let request = ClusterRequest::new()
///     .min_pts(8)
///     .min_cluster_size(10)
///     .allow_single_cluster(true);
/// assert_eq!(request.min_pts, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "a request does nothing until passed to Session::run"]
pub struct ClusterRequest {
    /// HDBSCAN\* `minPts` (neighbours including self defining the core
    /// distance). Must be `1..=min(n, index ceiling)` at run time.
    pub min_pts: usize,
    /// Minimum condensed-cluster size. Must be at least 1 at run time.
    pub min_cluster_size: usize,
    /// Whether the root may be selected as a flat cluster.
    pub allow_single_cluster: bool,
    /// Dendrogram backend override. `None` (the default) defers to the
    /// `PANDORA_DENDROGRAM` environment variable, then to α-contraction
    /// (precedence: request > env > default — see
    /// [`DendrogramBackend::resolve`]). Every backend is bit-identical, so
    /// this only changes *how* the dendrogram is computed, never the
    /// result.
    pub dendrogram: Option<DendrogramBackend>,
    /// Linkage criterion override. `None` (the default) defers to the
    /// `PANDORA_LINKAGE` environment variable, then to single linkage
    /// (precedence: request > env > default — see [`Linkage::resolve`]).
    /// Single linkage keeps the Borůvka EMST fast path; the other criteria
    /// run the NN-chain engine over the same frozen substrate.
    pub linkage: Option<Linkage>,
    /// Distance-metric override. `None` (the default) picks the natural
    /// metric for the resolved linkage: mutual reachability for single /
    /// complete / average (the HDBSCAN\* convention), plain Euclidean for
    /// Ward (whose variance objective is only defined there). Explicitly
    /// requesting [`MetricKind::MutualReachability`] together with Ward
    /// and `min_pts >= 2` is rejected at run time.
    pub metric: Option<MetricKind>,
}

impl Default for ClusterRequest {
    fn default() -> Self {
        let params = HdbscanParams::default();
        Self {
            min_pts: params.min_pts,
            min_cluster_size: params.min_cluster_size,
            allow_single_cluster: params.allow_single_cluster,
            dendrogram: None,
            linkage: None,
            metric: None,
        }
    }
}

impl ClusterRequest {
    /// A request with the stack's default parameters (`min_pts = 2`,
    /// `min_cluster_size = 5`, no single-cluster selection).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `minPts` (the core-distance neighbour count, including self).
    pub fn min_pts(mut self, min_pts: usize) -> Self {
        self.min_pts = min_pts;
        self
    }

    /// Sets the minimum condensed-cluster size.
    pub fn min_cluster_size(mut self, min_cluster_size: usize) -> Self {
        self.min_cluster_size = min_cluster_size;
        self
    }

    /// Sets whether the root may be selected as a flat cluster.
    pub fn allow_single_cluster(mut self, allow: bool) -> Self {
        self.allow_single_cluster = allow;
        self
    }

    /// Pins the dendrogram-construction backend for this request,
    /// overriding the `PANDORA_DENDROGRAM` environment variable.
    pub fn dendrogram(mut self, backend: DendrogramBackend) -> Self {
        self.dendrogram = Some(backend);
        self
    }

    /// Pins the linkage criterion for this request, overriding the
    /// `PANDORA_LINKAGE` environment variable.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pandora_hdbscan::{ClusterRequest, DatasetIndex};
    /// use pandora_mst::{Linkage, PointSet};
    ///
    /// let points = PointSet::try_new((0..64).map(|i| i as f32).collect(), 2)?;
    /// let index = Arc::new(DatasetIndex::freeze(points, 4)?);
    /// let mut session = index.session();
    ///
    /// // Ward linkage over the same frozen index; single (the default)
    /// // would keep the Borůvka EMST fast path instead.
    /// let result = session.run(&ClusterRequest::new().linkage(Linkage::Ward))?;
    /// assert_eq!(result.labels.len(), 32);
    /// # Ok::<(), pandora_mst::PandoraError>(())
    /// ```
    pub fn linkage(mut self, linkage: Linkage) -> Self {
        self.linkage = Some(linkage);
        self
    }

    /// Pins the distance metric for this request instead of the resolved
    /// linkage's natural default (mutual reachability for single /
    /// complete / average, Euclidean for Ward).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pandora_hdbscan::{ClusterRequest, DatasetIndex};
    /// use pandora_mst::{MetricKind, PandoraError, PointSet};
    ///
    /// let points = PointSet::try_new((0..64).map(|i| i as f32).collect(), 2)?;
    /// let index = Arc::new(DatasetIndex::freeze(points, 4)?);
    /// let mut session = index.session();
    ///
    /// // Plain single-linkage over raw Euclidean distances (no mutual-
    /// // reachability smoothing, whatever min_pts says).
    /// let request = ClusterRequest::new()
    ///     .min_pts(4)
    ///     .metric(MetricKind::Euclidean);
    /// assert!(session.run(&request).is_ok());
    /// # Ok::<(), PandoraError>(())
    /// ```
    pub fn metric(mut self, metric: MetricKind) -> Self {
        self.metric = Some(metric);
        self
    }

    /// The metric this request runs under once `linkage` has been
    /// resolved: the explicit override if set, otherwise the linkage's
    /// natural default.
    pub fn effective_metric(&self, linkage: Linkage) -> MetricKind {
        self.metric.unwrap_or(match linkage {
            Linkage::Ward => MetricKind::Euclidean,
            _ => MetricKind::MutualReachability,
        })
    }

    /// The equivalent driver parameters (for the legacy one-shot API).
    pub fn to_params(&self) -> HdbscanParams {
        HdbscanParams {
            min_pts: self.min_pts,
            min_cluster_size: self.min_cluster_size,
            allow_single_cluster: self.allow_single_cluster,
        }
    }
}

/// The per-session mutable state, pooled inside the index between
/// sessions so steady-state serving allocates nothing per request.
#[derive(Debug, Default)]
struct SessionState {
    emst: EmstScratch,
    dendro: DendrogramWorkspace,
}

/// Fewest scratch sets an index will agree to retain for recycling. The
/// actual cap scales with the execution context's worker lanes (see
/// [`DatasetIndex::pooled_cap`]) but never drops below this floor, so
/// small thread pools still absorb modest session bursts warm.
const MIN_POOLED_SESSIONS: usize = 16;

/// The immutable, `Arc`-shareable tier of the serving API: one dataset,
/// frozen once, read by every concurrent request (see the module docs).
pub struct DatasetIndex {
    emst: EmstIndex,
    ctx: ExecCtx,
    /// Scratch sets of finished sessions, recycled into new ones.
    pool: Mutex<Vec<SessionState>>,
    /// Most scratch sets the pool retains (see [`DatasetIndex::pooled_cap`]).
    pool_cap: usize,
}

/// Compile-time proof the index can be shared across serving threads and
/// sessions can be moved into them.
fn _assert_send_sync() {
    fn shared<T: Send + Sync>() {}
    fn movable<T: Send>() {}
    shared::<DatasetIndex>();
    movable::<Session>();
}

impl std::fmt::Debug for DatasetIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DatasetIndex")
            .field("n", &self.emst.len())
            .field("dim", &self.emst.points().dim())
            .field("max_min_pts", &self.emst.max_min_pts())
            .field("pooled_sessions", &self.pool.lock().len())
            .finish_non_exhaustive()
    }
}

impl DatasetIndex {
    /// Freezes a dataset into a shareable index on the global thread pool:
    /// validates the points (already done if they came through
    /// [`PointSet::try_new`]), builds the kd-tree, and captures one sorted
    /// k-NN pass wide enough for every request with
    /// `min_pts <= max_min_pts`.
    ///
    /// The freeze is the only expensive step of the serving API; sessions
    /// drawn afterwards are cheap and the index never changes again.
    ///
    /// # Errors
    ///
    /// * [`PandoraError::EmptyDataset`] — no points to index;
    /// * [`PandoraError::BadParams`] — `max_min_pts` is 0 or exceeds the
    ///   point count (for two or more points).
    ///
    /// ```
    /// use pandora_hdbscan::DatasetIndex;
    /// use pandora_mst::{PandoraError, PointSet};
    ///
    /// let points = PointSet::try_new(vec![0.0, 0.0, 1.0, 0.0, 5.0, 1.0], 2)?;
    /// let index = DatasetIndex::freeze(points, 3)?;
    /// assert_eq!(index.len(), 3);
    /// assert_eq!(index.max_min_pts(), 3);
    ///
    /// // Bad ceilings are errors, not panics.
    /// let empty = DatasetIndex::freeze(PointSet::try_new(vec![], 2)?, 2);
    /// assert_eq!(empty.err(), Some(PandoraError::EmptyDataset));
    /// # Ok::<(), PandoraError>(())
    /// ```
    pub fn freeze(points: PointSet, max_min_pts: usize) -> Result<Self, PandoraError> {
        Self::freeze_with_ctx(ExecCtx::threads(), points, max_min_pts)
    }

    /// [`DatasetIndex::freeze`] on a caller-chosen execution context; the
    /// context also becomes the default for sessions drawn from this index.
    pub fn freeze_with_ctx(
        ctx: ExecCtx,
        points: PointSet,
        max_min_pts: usize,
    ) -> Result<Self, PandoraError> {
        let emst = EmstIndex::freeze(&ctx, points, max_min_pts)?;
        // Scale the parked-scratch cap with the serving concurrency the
        // context implies (`PANDORA_THREADS` worker lanes): a daemon running
        // W lanes churns up to 2·W sessions through overlapping check-ins,
        // while a small pool has no use for dozens of parked O(n) sets.
        let pool_cap = (2 * ctx.lanes()).max(MIN_POOLED_SESSIONS);
        Ok(Self {
            emst,
            ctx,
            pool: Mutex::new(Vec::new()),
            pool_cap,
        })
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.emst.len()
    }

    /// Whether the index holds no points (never true — freezing an empty
    /// dataset is rejected).
    pub fn is_empty(&self) -> bool {
        self.emst.is_empty()
    }

    /// The largest `min_pts` a request against this index may carry.
    pub fn max_min_pts(&self) -> usize {
        self.emst.max_min_pts()
    }

    /// The frozen EMST substrate (tree, rows, dataset).
    pub fn emst(&self) -> &EmstIndex {
        &self.emst
    }

    /// The execution context sessions inherit by default.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// Seconds the freeze spent on the kd-tree build plus the k-NN pass.
    pub fn freeze_seconds(&self) -> f64 {
        self.emst.build_seconds() + self.emst.rows_seconds()
    }

    /// Scratch sets currently parked in the session pool.
    pub fn pooled_sessions(&self) -> usize {
        self.pool.lock().len()
    }

    /// Most scratch sets the session pool retains: twice the execution
    /// context's worker lanes, floored at 16. Beyond
    /// the cap, dropped sessions free their scratch instead of parking it,
    /// bounding the index's burst-memory high-water mark while still
    /// serving every steady-state lane a warm set.
    pub fn pooled_cap(&self) -> usize {
        self.pool_cap
    }

    /// Draws a session on the index's own execution context. Cheap: the
    /// scratch set is recycled from a finished session when one is pooled.
    #[must_use = "a session serves nothing until run() is called"]
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_with_ctx(self.ctx.clone())
    }

    /// Draws a session that dispatches its stages on a caller-chosen
    /// context — e.g. [`ExecCtx::serial`] when request-level parallelism
    /// (many sessions on many threads) already saturates the machine.
    #[must_use = "a session serves nothing until run() is called"]
    pub fn session_with_ctx(self: &Arc<Self>, ctx: ExecCtx) -> Session {
        let state = self.pool.lock().pop().unwrap_or_default();
        Session {
            index: Arc::clone(self),
            ctx,
            state,
        }
    }

    /// Returns a finished session's scratch to the pool — unless the pool
    /// already holds [`DatasetIndex::pooled_cap`] sets, in which case the
    /// scratch is simply dropped. The cap bounds the index's memory
    /// high-water mark: a burst of K concurrent sessions must not leave K
    /// dataset-sized scratch sets resident for the index's lifetime.
    fn check_in(&self, state: SessionState) {
        let mut pool = self.pool.lock();
        if pool.len() < self.pool_cap {
            pool.push(state);
        }
    }
}

/// The mutable tier of one in-flight request stream: borůvka round
/// buffers, dendrogram workspace and endgame cache, bound to one shared
/// [`DatasetIndex`] (see the module docs).
///
/// A session is `Send` (move it into a serving thread); running takes
/// `&mut self`, so two concurrent requests take two sessions. Dropping a
/// session parks its scratch in the index's pool for the next one.
#[derive(Debug)]
pub struct Session {
    index: Arc<DatasetIndex>,
    ctx: ExecCtx,
    state: SessionState,
}

impl Session {
    /// The index this session serves.
    pub fn index(&self) -> &Arc<DatasetIndex> {
        &self.index
    }

    /// Leased-but-unreturned scratch buffers (0 between runs — the leak
    /// accounting the stress tests assert on).
    pub fn scratch_outstanding(&self) -> usize {
        self.state.emst.pool().outstanding() + self.state.dendro.scratch().outstanding()
    }

    /// Answers one clustering request, reusing every warm stage buffer.
    ///
    /// For single linkage (the default), the result is **bit-identical**
    /// to [`crate::Hdbscan::run`] with the request's parameters — the
    /// frozen rows, the pooled buffers and the endgame cache are all
    /// strictly conservative optimizations. `timings.tree_build_s` is
    /// always 0: the substrate was paid once, at [`DatasetIndex::freeze`].
    /// Other linkage criteria run the NN-chain engine over the same
    /// substrate (see [`ClusterRequest::linkage`]).
    ///
    /// # Errors
    ///
    /// [`PandoraError::BadParams`] when `min_pts` is 0, exceeds the point
    /// count, or exceeds the index's freeze ceiling; when
    /// `min_cluster_size` is 0; or when the request pairs Ward linkage
    /// with an explicit mutual-reachability metric at `min_pts >= 2` (an
    /// undefined combination). A rejected request leaves the session
    /// fully reusable.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pandora_hdbscan::{ClusterRequest, DatasetIndex};
    /// use pandora_mst::{PandoraError, PointSet};
    ///
    /// let points = PointSet::try_new((0..64).map(|i| i as f32).collect(), 2)?;
    /// let index = Arc::new(DatasetIndex::freeze(points, 4)?);
    /// let mut session = index.session();
    ///
    /// let labels = session.run(&ClusterRequest::new().min_pts(3))?.labels;
    /// assert_eq!(labels.len(), 32);
    ///
    /// // A min_pts above the freeze ceiling is an error, not a panic.
    /// let err = session.run(&ClusterRequest::new().min_pts(9));
    /// assert!(matches!(err, Err(PandoraError::BadParams { .. })));
    /// # Ok::<(), PandoraError>(())
    /// ```
    pub fn run(&mut self, request: &ClusterRequest) -> Result<HdbscanResult, PandoraError> {
        if request.min_cluster_size == 0 {
            return Err(PandoraError::BadParams {
                param: "min_cluster_size",
                value: 0,
                reason: "must be at least 1",
            });
        }
        let linkage = Linkage::resolve(request.linkage);
        let metric = request.effective_metric(linkage);
        if linkage == Linkage::Ward && !metric.effectively_euclidean(request.min_pts) {
            // An explicit mutual-reachability override (the linkage default
            // would have picked Euclidean): Ward's variance objective has
            // no mutual-reachability analogue, so the combination is a
            // request error, not a silent reinterpretation.
            return Err(PandoraError::BadParams {
                param: "metric",
                value: request.min_pts,
                reason: "Ward linkage is undefined over mutual reachability; \
                         request the Euclidean metric (or min_pts = 1)",
            });
        }
        let ctx = self.ctx.clone();
        let mut timings = StageTimings::default();

        // Spanning-structure stage against the frozen substrate. Single
        // linkage keeps the Borůvka EMST fast path (phases emst_core /
        // emst_boruvka; the build was paid by the freeze); the other
        // criteria run the NN-chain engine, whose merge sequence is itself
        // a spanning tree the downstream stages consume unchanged.
        let emst = if linkage.uses_emst_fast_path() {
            emst_from_index_with(
                &ctx,
                &self.index.emst,
                request.min_pts,
                metric,
                &mut self.state.emst,
            )?
        } else {
            nnchain_from_index(
                &ctx,
                &self.index.emst,
                request.min_pts,
                linkage,
                metric,
                &mut self.state.emst,
            )?
        };
        timings.tree_build_s = emst.timings.tree_build_s;
        timings.core_s = emst.timings.core_s;
        timings.mst_s = emst.timings.boruvka_s;

        Ok(finish_pipeline(
            &ctx,
            self.index.len(),
            emst.core2,
            &emst.edges,
            request,
            &mut self.state.dendro,
            timings,
        ))
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.index.check_in(std::mem::take(&mut self.state));
    }
}

/// The dendrogram + extraction back half of the pipeline, shared by
/// [`Session::run`] and the legacy engine shim: sorts the MST, builds the
/// dendrogram with the resolved backend (request > `PANDORA_DENDROGRAM`
/// env > α-contraction) through the reusable workspace, condenses and
/// extracts flat clusters.
pub(crate) fn finish_pipeline(
    ctx: &ExecCtx,
    n: usize,
    core2: Vec<f32>,
    edges: &[Edge],
    request: &ClusterRequest,
    dendro_ws: &mut DendrogramWorkspace,
    mut timings: StageTimings,
) -> HdbscanResult {
    let t = Instant::now();
    ctx.set_phase("sort");
    let sort_start = Instant::now();
    let mst = SortedMst::from_edges(ctx, n, edges);
    let input_sort_s = sort_start.elapsed().as_secs_f64();
    let backend = DendrogramBackend::resolve(request.dendrogram);
    let (dendrogram, mut pandora_stats) = backend.build(ctx, &mst, dendro_ws);
    pandora_stats.timings.sort_s += input_sort_s;
    timings.dendrogram_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    ctx.set_phase("extract");
    let condensed = condense(&dendrogram, request.min_cluster_size);
    let stabilities = cluster_stabilities(&condensed);
    let selected = select_clusters(&condensed, &stabilities, request.allow_single_cluster);
    let (labels, probabilities) = extract_labels(&condensed, &selected);
    timings.extract_s = t.elapsed().as_secs_f64();

    HdbscanResult {
        core2,
        mst,
        dendrogram,
        condensed,
        stabilities,
        labels,
        probabilities,
        timings,
        pandora_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Hdbscan;
    use pandora_data::synthetic::gaussian_blobs;

    fn assert_identical(a: &HdbscanResult, b: &HdbscanResult, what: &str) {
        assert_eq!(a.core2, b.core2, "{what}: core2");
        assert_eq!(a.mst.src, b.mst.src, "{what}: mst src");
        assert_eq!(a.mst.dst, b.mst.dst, "{what}: mst dst");
        assert_eq!(a.mst.weight, b.mst.weight, "{what}: mst weights");
        assert_eq!(a.dendrogram, b.dendrogram, "{what}: dendrogram");
        assert_eq!(a.labels, b.labels, "{what}: labels");
        assert_eq!(a.probabilities, b.probabilities, "{what}: probabilities");
    }

    #[test]
    fn session_matches_one_shot_pipeline() {
        let (points, _) = gaussian_blobs(500, 2, 3, 90.0, 0.8, 17);
        let ctx = ExecCtx::serial();
        let index = Arc::new(
            DatasetIndex::freeze_with_ctx(ctx.clone(), points.clone(), 16).expect("freeze"),
        );
        let mut session = index.session();
        for min_pts in [2usize, 4, 8, 16] {
            let request = ClusterRequest::new().min_pts(min_pts);
            let served = session.run(&request).expect("valid request");
            let one_shot = Hdbscan::with_ctx(request.to_params(), ctx.clone()).run(&points);
            assert_identical(&served, &one_shot, &format!("min_pts={min_pts}"));
            assert_eq!(served.timings.tree_build_s, 0.0);
        }
        assert_eq!(session.scratch_outstanding(), 0);
    }

    #[test]
    fn sessions_recycle_scratch_through_the_index_pool() {
        let (points, _) = gaussian_blobs(300, 2, 2, 60.0, 0.7, 3);
        let index =
            Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 8).expect("freeze"));
        assert_eq!(index.pooled_sessions(), 0);
        {
            let mut session = index.session();
            let _ = session.run(&ClusterRequest::new()).expect("run");
        }
        assert_eq!(index.pooled_sessions(), 1, "drop must park the scratch");
        {
            // The next session must pick the warm scratch back up.
            let mut session = index.session();
            assert_eq!(index.pooled_sessions(), 0);
            let before = session.state.emst.pool().reuse_hits();
            let _ = session.run(&ClusterRequest::new().min_pts(4)).expect("run");
            assert!(
                session.state.emst.pool().reuse_hits() > before,
                "recycled scratch must serve warm buffers"
            );
        }
        assert_eq!(index.pooled_sessions(), 1);
    }

    #[test]
    fn session_pool_is_capped_after_a_burst() {
        // A burst of concurrent sessions must not leave an unbounded pile
        // of dataset-sized scratch sets parked in the index forever.
        let (points, _) = gaussian_blobs(80, 2, 2, 40.0, 0.6, 9);
        let index =
            Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 4).expect("freeze"));
        // A serial context has one lane, so the cap sits at the floor.
        assert_eq!(index.pooled_cap(), MIN_POOLED_SESSIONS);
        let burst: Vec<Session> = (0..index.pooled_cap() + 8)
            .map(|_| index.session())
            .collect();
        drop(burst);
        assert_eq!(index.pooled_sessions(), index.pooled_cap());
        // The pool still serves warm sessions normally.
        let mut session = index.session();
        assert!(session.run(&ClusterRequest::new()).is_ok());
    }

    #[test]
    fn session_pool_cap_scales_with_worker_lanes() {
        // A wide execution context implies matching request concurrency, so
        // the parked-scratch cap follows the lane count instead of pinning
        // every deployment to the 16-entry floor.
        let (points, _) = gaussian_blobs(60, 2, 2, 40.0, 0.6, 9);
        let pool = Arc::new(pandora_exec::pool::ThreadPool::new(12));
        let ctx = ExecCtx::on_pool(pool);
        assert_eq!(ctx.lanes(), 12);
        let index = Arc::new(DatasetIndex::freeze_with_ctx(ctx, points, 4).expect("freeze"));
        assert_eq!(index.pooled_cap(), 24);
        let burst: Vec<Session> = (0..index.pooled_cap() + 4)
            .map(|_| index.session())
            .collect();
        drop(burst);
        assert_eq!(index.pooled_sessions(), index.pooled_cap());
    }

    #[test]
    fn bad_requests_error_and_leave_the_session_usable() {
        let (points, _) = gaussian_blobs(100, 2, 2, 50.0, 0.6, 5);
        let index =
            Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 8).expect("freeze"));
        let mut session = index.session();
        for request in [
            ClusterRequest::new().min_pts(0),
            ClusterRequest::new().min_pts(101),
            ClusterRequest::new().min_pts(9), // above the freeze ceiling
            ClusterRequest::new().min_cluster_size(0),
        ] {
            let err = session.run(&request);
            assert!(
                matches!(err, Err(PandoraError::BadParams { .. })),
                "{request:?} gave {err:?}"
            );
        }
        assert_eq!(session.scratch_outstanding(), 0);
        let ok = session
            .run(&ClusterRequest::new())
            .expect("session survives");
        assert_eq!(ok.labels.len(), 100);
    }

    #[test]
    fn freeze_is_fallible_not_panicking() {
        assert_eq!(
            DatasetIndex::freeze(PointSet::new(vec![], 3), 2).err(),
            Some(PandoraError::EmptyDataset)
        );
        let (points, _) = gaussian_blobs(10, 2, 1, 10.0, 0.5, 1);
        assert!(matches!(
            DatasetIndex::freeze(points.clone(), 0).err(),
            Some(PandoraError::BadParams {
                param: "max_min_pts",
                ..
            })
        ));
        assert!(matches!(
            DatasetIndex::freeze(points, 11).err(),
            Some(PandoraError::BadParams {
                param: "max_min_pts",
                ..
            })
        ));
    }

    #[test]
    fn request_builder_round_trips_params() {
        let request = ClusterRequest::new()
            .min_pts(7)
            .min_cluster_size(9)
            .allow_single_cluster(true);
        let params = request.to_params();
        assert_eq!(params.min_pts, 7);
        assert_eq!(params.min_cluster_size, 9);
        assert!(params.allow_single_cluster);
        assert_eq!(ClusterRequest::default(), ClusterRequest::new());
        assert_eq!(ClusterRequest::new().linkage, None);
        assert_eq!(
            ClusterRequest::new().linkage(Linkage::Ward).linkage,
            Some(Linkage::Ward)
        );
        assert_eq!(
            ClusterRequest::new().metric(MetricKind::Euclidean).metric,
            Some(MetricKind::Euclidean)
        );
    }

    #[test]
    fn effective_metric_defaults_follow_the_linkage() {
        let request = ClusterRequest::new();
        assert_eq!(
            request.effective_metric(Linkage::Single),
            MetricKind::MutualReachability
        );
        assert_eq!(
            request.effective_metric(Linkage::Ward),
            MetricKind::Euclidean
        );
        // An explicit override beats the linkage default.
        let explicit = ClusterRequest::new().metric(MetricKind::MutualReachability);
        assert_eq!(
            explicit.effective_metric(Linkage::Ward),
            MetricKind::MutualReachability
        );
    }

    #[test]
    fn every_linkage_serves_and_single_stays_on_the_fast_path() {
        let (points, _) = gaussian_blobs(240, 3, 3, 70.0, 0.8, 23);
        let index =
            Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 8).expect("freeze"));
        let mut session = index.session();
        let baseline = session
            .run(&ClusterRequest::new().min_pts(4))
            .expect("default request");
        for linkage in Linkage::ALL {
            let served = session
                .run(&ClusterRequest::new().min_pts(4).linkage(linkage))
                .expect("every linkage serves");
            assert_eq!(served.labels.len(), 240, "{linkage}");
            served.dendrogram.validate().expect("valid dendrogram");
            assert_eq!(session.scratch_outstanding(), 0, "{linkage}");
            if linkage == Linkage::Single {
                // An explicit Single request is the default path, bit for bit.
                assert_identical(&served, &baseline, "explicit single");
            }
        }
    }

    #[test]
    fn ward_over_explicit_mutual_reachability_is_rejected() {
        let (points, _) = gaussian_blobs(60, 2, 2, 40.0, 0.6, 7);
        let index =
            Arc::new(DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points, 4).expect("freeze"));
        let mut session = index.session();
        let bad = ClusterRequest::new()
            .min_pts(3)
            .linkage(Linkage::Ward)
            .metric(MetricKind::MutualReachability);
        assert!(matches!(
            session.run(&bad),
            Err(PandoraError::BadParams {
                param: "metric",
                ..
            })
        ));
        // At min_pts = 1 mutual reachability degenerates to Euclidean, so
        // the same spelling is allowed; Ward alone picks Euclidean itself.
        assert!(session.run(&bad.min_pts(1)).is_ok());
        assert!(session
            .run(&ClusterRequest::new().min_pts(3).linkage(Linkage::Ward))
            .is_ok());
        assert_eq!(session.scratch_outstanding(), 0);
    }
}
