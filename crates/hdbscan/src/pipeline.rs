//! The full HDBSCAN\* pipeline (paper §6.5):
//!
//! 1. core distances via k-NN (`minPts`);
//! 2. MST under the mutual reachability distance (parallel Borůvka);
//! 3. single-linkage dendrogram (PANDORA);
//! 4. condensed tree + stability-optimal flat clusters.
//!
//! Every stage is timed separately, matching the decompositions in the
//! paper's Figures 1, 12 and 15.
//!
//! This one-shot driver is pinned to the pipeline above: single linkage on
//! the Borůvka EMST fast path. The serving API
//! ([`crate::serve::ClusterRequest::linkage`]) additionally dispatches
//! complete / average / Ward linkage through the NN-chain engine; stage 2
//! then produces the merge sequence (itself a spanning tree) instead of
//! the EMST, and stages 3–4 run unchanged.

use pandora_core::{Dendrogram, PandoraStats, SortedMst};
use pandora_exec::ExecCtx;
use pandora_mst::PointSet;

use crate::condensed::CondensedTree;

/// HDBSCAN\* parameters.
#[derive(Debug, Clone, Copy)]
pub struct HdbscanParams {
    /// `minPts`: neighbours (incl. self) defining the core distance.
    /// The paper's default is 2 (§6.5 "we use the default mpts = 2").
    pub min_pts: usize,
    /// Minimum cluster size for the condensed tree.
    pub min_cluster_size: usize,
    /// Whether the root may be selected as a flat cluster.
    pub allow_single_cluster: bool,
}

impl Default for HdbscanParams {
    fn default() -> Self {
        Self {
            min_pts: 2,
            min_cluster_size: 5,
            allow_single_cluster: false,
        }
    }
}

/// Per-stage wall-clock seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// kd-tree construction.
    pub tree_build_s: f64,
    /// Core-distance k-NN queries.
    pub core_s: f64,
    /// Borůvka MST under mutual reachability.
    pub mst_s: f64,
    /// Dendrogram construction (all PANDORA phases).
    pub dendrogram_s: f64,
    /// Condensed tree + stability extraction.
    pub extract_s: f64,
}

impl StageTimings {
    /// Total pipeline seconds.
    pub fn total(&self) -> f64 {
        self.tree_build_s + self.core_s + self.mst_s + self.dendrogram_s + self.extract_s
    }

    /// The paper's "EMST" stage (tree build + core distances + Borůvka).
    pub fn emst_s(&self) -> f64 {
        self.tree_build_s + self.core_s + self.mst_s
    }
}

/// The output of a full HDBSCAN\* run.
#[derive(Debug, Clone)]
pub struct HdbscanResult {
    /// Squared core distance per point (`minPts`-th neighbour).
    pub core2: Vec<f32>,
    /// The mutual-reachability MST in canonical (weight-descending) order.
    pub mst: SortedMst,
    /// The single-linkage dendrogram over that MST.
    pub dendrogram: Dendrogram,
    /// The condensed cluster tree.
    pub condensed: CondensedTree,
    /// Stability of each condensed cluster.
    pub stabilities: Vec<f64>,
    /// Flat cluster label per point (−1 = noise).
    pub labels: Vec<i32>,
    /// Membership probability per point.
    pub probabilities: Vec<f32>,
    /// Stage timings.
    pub timings: StageTimings,
    /// PANDORA level/phase statistics.
    pub pandora_stats: PandoraStats,
}

impl HdbscanResult {
    /// Number of flat clusters.
    pub fn n_clusters(&self) -> usize {
        self.labels
            .iter()
            .copied()
            .max()
            .map_or(0, |m| (m + 1) as usize)
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|&&l| l == -1).count()
    }

    /// Flat clusters from cutting the *single-linkage* hierarchy at a
    /// mutual-reachability distance threshold (DBSCAN\*-style).
    pub fn cut(&self, threshold: f32) -> Vec<u32> {
        self.dendrogram.cut(threshold, &self.mst.src, &self.mst.dst)
    }
}

/// The HDBSCAN\* driver.
#[derive(Clone)]
pub struct Hdbscan {
    params: HdbscanParams,
    ctx: ExecCtx,
}

impl Hdbscan {
    /// Creates a driver on the global thread pool.
    pub fn new(params: HdbscanParams) -> Self {
        Self {
            params,
            ctx: ExecCtx::threads(),
        }
    }

    /// Creates a driver on a caller-chosen execution context.
    pub fn with_ctx(params: HdbscanParams, ctx: ExecCtx) -> Self {
        Self { params, ctx }
    }

    /// The parameters.
    pub fn params(&self) -> &HdbscanParams {
        &self.params
    }

    /// The execution context runs are dispatched on.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// Runs the full pipeline once.
    ///
    /// Thin wrapper over a one-off [`crate::engine::HdbscanEngine`]: build
    /// the stage workspaces, answer this one request, drop them. Serving
    /// several requests over the same dataset (or sweeping `minPts`) should
    /// hold an engine instead — [`Hdbscan::engine`] — which amortizes the
    /// kd-tree build, the k-NN pass and every stage buffer across runs
    /// while producing bit-identical results.
    pub fn run(&self, points: &PointSet) -> HdbscanResult {
        self.engine(points).run_with(self.params.min_pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::gaussian_blobs;

    #[test]
    fn recovers_three_blobs() {
        let (points, truth) = gaussian_blobs(600, 2, 3, 100.0, 0.5, 7);
        let result = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial()).run(&points);
        assert_eq!(result.n_clusters(), 3);
        // Labels must be consistent with ground truth up to permutation:
        // same-truth pairs share a label.
        for i in (0..600).step_by(37) {
            for j in (0..600).step_by(41) {
                if result.labels[i] >= 0 && result.labels[j] >= 0 {
                    assert_eq!(
                        truth[i] == truth[j],
                        result.labels[i] == result.labels[j],
                        "points {i},{j}"
                    );
                }
            }
        }
        // Tight blobs: almost nothing is noise.
        assert!(result.n_noise() < 30, "noise = {}", result.n_noise());
    }

    #[test]
    fn min_pts_changes_mst_weights() {
        let (points, _) = gaussian_blobs(300, 2, 2, 50.0, 1.0, 3);
        let ctx = ExecCtx::serial();
        let r2 = Hdbscan::with_ctx(
            HdbscanParams {
                min_pts: 2,
                ..Default::default()
            },
            ctx.clone(),
        )
        .run(&points);
        let r16 = Hdbscan::with_ctx(
            HdbscanParams {
                min_pts: 16,
                ..Default::default()
            },
            ctx,
        )
        .run(&points);
        let w2: f64 = r2.mst.weight.iter().map(|&w| w as f64).sum();
        let w16: f64 = r16.mst.weight.iter().map(|&w| w as f64).sum();
        // Mutual reachability distances grow with minPts.
        assert!(w16 > w2, "{w16} vs {w2}");
    }

    #[test]
    fn noise_points_detected() {
        // Two dense blobs plus far-away isolated points.
        let (mut blob_pts, _) = gaussian_blobs(200, 2, 2, 100.0, 0.3, 5);
        let mut coords = blob_pts.coords().to_vec();
        coords.extend_from_slice(&[5000.0, 5000.0, -4000.0, 7000.0, 9000.0, -3000.0]);
        blob_pts = PointSet::new(coords, 2);
        let result = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::serial()).run(&blob_pts);
        assert_eq!(result.n_clusters(), 2);
        for outlier in 200..203 {
            assert_eq!(result.labels[outlier], -1, "outlier {outlier} not noise");
        }
    }

    #[test]
    fn timings_are_populated() {
        let (points, _) = gaussian_blobs(400, 3, 2, 60.0, 1.0, 1);
        let result = Hdbscan::new(HdbscanParams::default()).run(&points);
        assert!(result.timings.total() > 0.0);
        assert!(result.timings.emst_s() > 0.0);
        assert_eq!(result.pandora_stats.level_edge_counts[0], 399);
    }

    #[test]
    fn deterministic_across_runs() {
        let (points, _) = gaussian_blobs(500, 2, 4, 80.0, 0.8, 11);
        let a = Hdbscan::new(HdbscanParams::default()).run(&points);
        let b = Hdbscan::new(HdbscanParams::default()).run(&points);
        assert_eq!(a.labels, b.labels);
    }
}
