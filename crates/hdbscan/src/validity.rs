//! Density-Based Cluster Validity (DBCV, Moulavi et al. 2014) — the
//! standard internal quality index for density-based clusterings, computed
//! with the same machinery the clustering itself uses (mutual-reachability
//! MSTs), so it comes almost for free on top of the pandora stack.
//!
//! For each cluster, the **density sparseness** `DSC(C)` is the maximum
//! edge of the cluster's internal mutual-reachability MST; the **density
//! separation** `DSPC(Cᵢ, Cⱼ)` is the minimum mutual-reachability distance
//! between their points. Cluster validity is
//! `(min_j DSPC − DSC) / max(min_j DSPC, DSC)` ∈ [−1, 1], and DBCV is the
//! size-weighted average — higher is better.
//!
//! This implementation follows the original definition but computes core
//! distances over the full dataset (all-points core distance), which is the
//! common simplification in practice.

use pandora_exec::ExecCtx;
use pandora_mst::{core_distances2, emst_with_core2, KdTree, Metric, MutualReachability, PointSet};

/// DBCV score of a flat clustering (−1 = worst, 1 = best).
///
/// `labels[i] < 0` marks noise (excluded from cluster validity but counted
/// in the size weighting denominator, as in the reference implementation).
/// Returns `None` when fewer than two real clusters exist.
pub fn dbcv(ctx: &ExecCtx, points: &PointSet, labels: &[i32], min_pts: usize) -> Option<f64> {
    assert_eq!(labels.len(), points.len());
    let k = labels.iter().copied().max().map_or(0, |m| m + 1) as usize;
    if k < 2 {
        return None;
    }

    // Core distances over the full dataset.
    let tree = KdTree::build(ctx, points);
    let core2 = core_distances2(ctx, points, &tree, min_pts);
    let metric = MutualReachability { core2: &core2 };

    // Cluster member lists.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        if l >= 0 {
            members[l as usize].push(i as u32);
        }
    }
    if members.iter().filter(|m| m.len() >= 2).count() < 2 {
        return None;
    }

    // Density sparseness per cluster: max edge of the internal MST, with
    // distances evaluated under the *global* mutual reachability metric.
    let mut sparseness = vec![f64::NAN; k];
    for (c, m) in members.iter().enumerate() {
        if m.len() < 2 {
            continue;
        }
        let sub = points.select(m);
        let sub_core2: Vec<f32> = m.iter().map(|&i| core2[i as usize]).collect();
        let mst = emst_with_core2(ctx, &sub, &sub_core2);
        sparseness[c] = mst.iter().map(|e| e.w as f64).fold(0.0f64, f64::max);
    }

    // Pairwise density separation: min mutual-reachability distance between
    // clusters. O(Σ|Cᵢ|·|Cⱼ|) — fine for validation-scale data; the kd-tree
    // nearest-foreign machinery could accelerate this if ever needed.
    let mut separation = vec![vec![f64::INFINITY; k]; k];
    for ci in 0..k {
        for cj in (ci + 1)..k {
            if members[ci].len() < 2 || members[cj].len() < 2 {
                continue;
            }
            let mut best = f64::INFINITY;
            for &a in &members[ci] {
                for &b in &members[cj] {
                    let d2 = metric.dist2(points, a, b);
                    best = best.min((d2 as f64).sqrt());
                }
            }
            separation[ci][cj] = best;
            separation[cj][ci] = best;
        }
    }

    // Validity per cluster, weighted by size.
    let n_total = labels.len() as f64;
    let mut score = 0.0f64;
    for c in 0..k {
        if members[c].len() < 2 {
            continue;
        }
        let min_sep = (0..k)
            .filter(|&o| o != c && members[o].len() >= 2)
            .map(|o| separation[c][o])
            .fold(f64::INFINITY, f64::min);
        let dsc = sparseness[c];
        let validity = (min_sep - dsc) / min_sep.max(dsc);
        score += validity * members[c].len() as f64 / n_total;
    }
    Some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::gaussian_blobs;

    #[test]
    fn good_clustering_scores_high() {
        let (points, truth) = gaussian_blobs(300, 2, 3, 200.0, 0.5, 5);
        let ctx = ExecCtx::serial();
        let labels: Vec<i32> = truth.iter().map(|&t| t as i32).collect();
        let score = dbcv(&ctx, &points, &labels, 4).unwrap();
        assert!(score > 0.6, "well-separated blobs scored {score}");
    }

    #[test]
    fn scrambled_labels_score_low() {
        let (points, truth) = gaussian_blobs(300, 2, 3, 200.0, 0.5, 5);
        let ctx = ExecCtx::serial();
        // Truth is assigned round-robin (`i % 3`); contiguous blocks of 100
        // therefore mix all three blobs — a density-meaningless partition.
        let labels: Vec<i32> = (0..points.len()).map(|i| ((i / 100) % 3) as i32).collect();
        let good: Vec<i32> = truth.iter().map(|&t| t as i32).collect();
        let bad_score = dbcv(&ctx, &points, &labels, 4).unwrap();
        let good_score = dbcv(&ctx, &points, &good, 4).unwrap();
        assert!(
            good_score > bad_score + 0.5,
            "good {good_score} vs bad {bad_score}"
        );
        assert!(bad_score < 0.0, "scrambled labels scored {bad_score}");
    }

    #[test]
    fn single_cluster_is_none() {
        let (points, _) = gaussian_blobs(100, 2, 1, 1.0, 0.5, 2);
        let ctx = ExecCtx::serial();
        let labels = vec![0i32; points.len()];
        assert!(dbcv(&ctx, &points, &labels, 4).is_none());
    }

    #[test]
    fn noise_is_tolerated() {
        let (points, truth) = gaussian_blobs(200, 2, 2, 150.0, 0.5, 9);
        let ctx = ExecCtx::serial();
        let mut labels: Vec<i32> = truth.iter().map(|&t| t as i32).collect();
        for l in labels.iter_mut().step_by(17) {
            *l = -1;
        }
        let score = dbcv(&ctx, &points, &labels, 4).unwrap();
        assert!(score > 0.3);
    }
}
