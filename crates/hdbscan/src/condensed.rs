//! The condensed cluster tree (HDBSCAN\* §4 of Campello et al., paper \[9\]).
//!
//! The full single-linkage dendrogram has one internal node per MST edge;
//! the condensed tree keeps only splits where **both** sides have at least
//! `min_cluster_size` points. Smaller sides "fall out" of their cluster as
//! individual points at `λ = 1/distance`; clusters are born at the λ of the
//! split that created them and die when they shrink below the threshold.

use pandora_core::{Dendrogram, INVALID};

/// λ value used where a merge distance is ~0 (duplicate points).
const LAMBDA_CAP: f32 = 1.0e12;

#[inline(always)]
fn lambda_of(dist: f32) -> f32 {
    if dist <= 0.0 {
        LAMBDA_CAP
    } else {
        (1.0 / dist).min(LAMBDA_CAP)
    }
}

/// The condensed tree, stored as parallel row arrays plus per-cluster
/// metadata. Cluster ids are dense, `0` is the root cluster; children always
/// have larger ids than parents.
#[derive(Debug, Clone)]
pub struct CondensedTree {
    /// Row: the condensed cluster the child leaves / is born from.
    pub parent: Vec<u32>,
    /// Row: a point id (`< n_points`) or `n_points + cluster_id`.
    pub child: Vec<u32>,
    /// Row: λ at which the child leaves the parent.
    pub lambda: Vec<f32>,
    /// Row: number of points in the child (1 for point rows).
    pub size: Vec<u32>,
    /// Number of data points.
    pub n_points: usize,
    /// λ at which each cluster was born.
    pub cluster_birth: Vec<f32>,
    /// Parent cluster of each cluster ([`INVALID`] for the root).
    pub cluster_parent: Vec<u32>,
}

impl CondensedTree {
    /// Number of condensed clusters (including the root).
    pub fn n_clusters(&self) -> usize {
        self.cluster_birth.len()
    }

    /// Whether a row's child is a cluster (vs. a point).
    #[inline(always)]
    pub fn child_is_cluster(&self, row: usize) -> bool {
        self.child[row] as usize >= self.n_points
    }

    /// The cluster id of a cluster-row child.
    #[inline(always)]
    pub fn child_cluster(&self, row: usize) -> u32 {
        debug_assert!(self.child_is_cluster(row));
        self.child[row] - self.n_points as u32
    }
}

/// Condenses a single-linkage dendrogram.
pub fn condense(dendrogram: &Dendrogram, min_cluster_size: usize) -> CondensedTree {
    let n_edges = dendrogram.n_edges();
    let n_points = dendrogram.n_vertices();
    let min_sz = min_cluster_size.max(2) as u32;

    // Every point eventually falls out of exactly one cluster, plus a few
    // cluster rows: n_points + slack is the natural row capacity (grown-
    // from-zero rows would pay ~log n reallocations per array instead).
    let row_cap = n_points + 16;
    let mut ct = CondensedTree {
        parent: Vec::with_capacity(row_cap),
        child: Vec::with_capacity(row_cap),
        lambda: Vec::with_capacity(row_cap),
        size: Vec::with_capacity(row_cap),
        n_points,
        cluster_birth: Vec::new(),
        cluster_parent: Vec::new(),
    };
    if n_edges == 0 {
        // Single point: one root cluster, no rows.
        ct.cluster_birth.push(0.0);
        ct.cluster_parent.push(INVALID);
        return ct;
    }

    // Children of each edge node: up to two edges + up to two vertices.
    let edge_children = dendrogram.edge_children();
    let mut vertex_children: Vec<[u32; 2]> = vec![[INVALID; 2]; n_edges];
    for (v, &p) in dendrogram.vertex_parent.iter().enumerate() {
        let slot = &mut vertex_children[p as usize];
        if slot[0] == INVALID {
            slot[0] = v as u32;
        } else {
            debug_assert_eq!(slot[1], INVALID);
            slot[1] = v as u32;
        }
    }
    let sizes = dendrogram.cluster_sizes();

    // Root cluster: born at λ of the root edge (everything above is "all
    // points", standard convention uses the root split's λ as birth).
    ct.cluster_birth.push(lambda_of(dendrogram.edge_weight[0]));
    ct.cluster_parent.push(INVALID);

    // Emit all points of edge-subtree `e` as fall-outs from `cluster` at λ,
    // marking the subtree's edges so the main walk does not revisit them.
    // `stack` is caller-owned scratch: fall-outs happen once per small
    // side, so a per-call allocation would scale with the fall-out count.
    #[allow(clippy::too_many_arguments)]
    fn emit_subtree(
        ct: &mut CondensedTree,
        vertex_children: &[[u32; 2]],
        edge_children: &[[u32; 2]],
        absorbed: &mut [bool],
        stack: &mut Vec<u32>,
        e: u32,
        cluster: u32,
        lam: f32,
    ) {
        stack.clear();
        stack.push(e);
        while let Some(cur) = stack.pop() {
            absorbed[cur as usize] = true;
            for v in vertex_children[cur as usize] {
                if v != INVALID {
                    ct.parent.push(cluster);
                    ct.child.push(v);
                    ct.lambda.push(lam);
                    ct.size.push(1);
                }
            }
            for c in edge_children[cur as usize] {
                if c != INVALID {
                    stack.push(c);
                }
            }
        }
    }

    // Walk the dendrogram top-down; `cluster_of[e]` = the condensed cluster
    // edge-node `e`'s split belongs to.
    let mut cluster_of = vec![0u32; n_edges];
    let mut absorbed = vec![false; n_edges];
    let mut stack: Vec<u32> = Vec::new();
    for e in 0..n_edges as u32 {
        if absorbed[e as usize] {
            continue;
        }
        let cluster = cluster_of[e as usize];
        let lam = lambda_of(dendrogram.edge_weight[e as usize]);

        // Vertex children always fall out as single points.
        for v in vertex_children[e as usize] {
            if v != INVALID {
                ct.parent.push(cluster);
                ct.child.push(v);
                ct.lambda.push(lam);
                ct.size.push(1);
            }
        }

        let kids = edge_children[e as usize];
        let (c1, c2) = (kids[0], kids[1]);
        match (c1 != INVALID, c2 != INVALID) {
            (false, false) => {} // leaf edge: both children were vertices
            (true, false) | (false, true) => {
                // One edge child: the cluster continues through it if it is
                // still large enough; otherwise its points fall out.
                let c = if c1 != INVALID { c1 } else { c2 };
                if sizes[c as usize] >= min_sz {
                    cluster_of[c as usize] = cluster;
                } else {
                    emit_subtree(
                        &mut ct,
                        &vertex_children,
                        &edge_children,
                        &mut absorbed,
                        &mut stack,
                        c,
                        cluster,
                        lam,
                    );
                }
            }
            (true, true) => {
                let (s1, s2) = (sizes[c1 as usize], sizes[c2 as usize]);
                let big1 = s1 >= min_sz;
                let big2 = s2 >= min_sz;
                if big1 && big2 {
                    // True split: two new clusters are born.
                    for (c, s) in [(c1, s1), (c2, s2)] {
                        let new_id = ct.cluster_birth.len() as u32;
                        ct.cluster_birth.push(lam);
                        ct.cluster_parent.push(cluster);
                        ct.parent.push(cluster);
                        ct.child.push(n_points as u32 + new_id);
                        ct.lambda.push(lam);
                        ct.size.push(s);
                        cluster_of[c as usize] = new_id;
                    }
                } else {
                    // Small sides fall out; a single big side continues.
                    for (c, big) in [(c1, big1), (c2, big2)] {
                        if big {
                            cluster_of[c as usize] = cluster;
                        } else {
                            emit_subtree(
                                &mut ct,
                                &vertex_children,
                                &edge_children,
                                &mut absorbed,
                                &mut stack,
                                c,
                                cluster,
                                lam,
                            );
                        }
                    }
                }
            }
        }
    }
    ct
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_core::{pandora, Edge};
    use pandora_exec::ExecCtx;

    /// Two tight pairs bridged by a long edge; min_cluster_size=2 splits.
    fn two_pair_dendrogram() -> Dendrogram {
        let ctx = ExecCtx::serial();
        let edges = vec![
            Edge::new(0, 1, 0.1),
            Edge::new(2, 3, 0.2),
            Edge::new(1, 2, 10.0),
        ];
        pandora::dendrogram(&ctx, 4, &edges)
    }

    #[test]
    fn true_split_creates_two_clusters() {
        let ct = condense(&two_pair_dendrogram(), 2);
        assert_eq!(ct.n_clusters(), 3); // root + two pairs
        assert_eq!(ct.cluster_parent[1], 0);
        assert_eq!(ct.cluster_parent[2], 0);
        // Every point eventually falls out of some cluster.
        let point_rows = (0..ct.parent.len())
            .filter(|&r| !ct.child_is_cluster(r))
            .count();
        assert_eq!(point_rows, 4);
    }

    #[test]
    fn large_min_cluster_size_keeps_single_cluster() {
        let ct = condense(&two_pair_dendrogram(), 3);
        // No split survives; all 4 points fall out of the root.
        assert_eq!(ct.n_clusters(), 1);
        assert_eq!(ct.parent.len(), 4);
        assert!(ct.parent.iter().all(|&p| p == 0));
    }

    #[test]
    fn sizes_are_consistent() {
        let ct = condense(&two_pair_dendrogram(), 2);
        for row in 0..ct.parent.len() {
            if ct.child_is_cluster(row) {
                assert_eq!(ct.size[row], 2);
            } else {
                assert_eq!(ct.size[row], 1);
            }
        }
    }

    #[test]
    fn zero_distance_merges_get_capped_lambda() {
        let ctx = ExecCtx::serial();
        let edges = vec![Edge::new(0, 1, 0.0), Edge::new(1, 2, 1.0)];
        let d = pandora::dendrogram(&ctx, 3, &edges);
        let ct = condense(&d, 2);
        assert!(ct.lambda.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn single_point_tree() {
        let ctx = ExecCtx::serial();
        let d = pandora::dendrogram(&ctx, 1, &[]);
        let ct = condense(&d, 2);
        assert_eq!(ct.n_clusters(), 1);
        assert!(ct.parent.is_empty());
    }
}
