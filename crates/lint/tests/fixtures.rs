//! Drives the analysis engine over the fixture files in `tests/fixtures/`
//! — synthetic sources exercising exactly the cases a grep-based checker
//! gets wrong (rule text inside strings, raw strings, nested comments)
//! plus the waiver machinery's accountability rules.
//!
//! Fixtures are analyzed as text via [`Analyzer::check_source`] with a
//! hand-built [`SourceFile`] identity; they are never compiled.

use pandora_lint::{all_rules, Analyzer, Finding, SourceFile, TargetKind};

/// Fixture identity: a serving-tier module (PL001 in scope).
fn serving_file() -> SourceFile {
    SourceFile {
        rel_path: "crates/hdbscan/src/serve/fixture.rs".into(),
        crate_name: "pandora-hdbscan".into(),
        module_path: "pandora_hdbscan::serve::fixture".into(),
        target: TargetKind::Lib,
        cfg_test_ranges: Vec::new(),
    }
}

/// Fixture identity: an exec-crate library module (PL002/PL004 in scope).
fn exec_file() -> SourceFile {
    SourceFile {
        rel_path: "crates/exec/src/fixture.rs".into(),
        crate_name: "pandora-exec".into(),
        module_path: "pandora_exec::fixture".into(),
        target: TargetKind::Lib,
        cfg_test_ranges: Vec::new(),
    }
}

/// Fixture identity: a compute-kernel module (PL005 in scope).
fn kernel_file() -> SourceFile {
    SourceFile {
        rel_path: "crates/core/src/fixture.rs".into(),
        crate_name: "pandora-core".into(),
        module_path: "pandora_core::fixture".into(),
        target: TargetKind::Lib,
        cfg_test_ranges: Vec::new(),
    }
}

fn run(file: &SourceFile, src: &str) -> (Vec<Finding>, usize) {
    let analyzer = Analyzer::default();
    let rules = all_rules();
    let (unwaived, waived) = analyzer.check_source(file, src, &rules);
    (unwaived, waived.len())
}

fn codes(findings: &[Finding], code: &str) -> Vec<u32> {
    let mut lines: Vec<u32> = findings
        .iter()
        .filter(|f| f.rule == code)
        .map(|f| f.line)
        .collect();
    lines.sort_unstable();
    lines
}

#[test]
fn serving_bad_flags_every_panic_path() {
    let src = include_str!("fixtures/serving_bad.rs");
    let (findings, _) = run(&serving_file(), src);
    let pl001 = codes(&findings, "PL001");
    // unwrap, panic!, expect, unreachable!, todo!, unimplemented! — six
    // distinct lines.
    assert_eq!(pl001.len(), 6, "findings: {findings:?}");
}

#[test]
fn serving_good_is_clean_despite_rule_text_in_strings_and_comments() {
    let src = include_str!("fixtures/serving_good.rs");
    let (findings, waived) = run(&serving_file(), src);
    assert!(
        findings.is_empty(),
        "lexer failed to skip strings/comments: {findings:?}"
    );
    assert_eq!(waived, 0);
}

#[test]
fn safety_bad_flags_missing_and_detached_comments() {
    let src = include_str!("fixtures/safety_bad.rs");
    let (findings, _) = run(&exec_file(), src);
    let pl002 = codes(&findings, "PL002");
    // naked block, detached comment, naked unsafe fn.
    assert_eq!(pl002.len(), 3, "findings: {findings:?}");
}

#[test]
fn safety_good_accepts_every_documented_form() {
    let src = include_str!("fixtures/safety_good.rs");
    let (findings, _) = run(&exec_file(), src);
    assert!(
        codes(&findings, "PL002").is_empty(),
        "false positives: {findings:?}"
    );
}

#[test]
fn waiver_fixture_exercises_accountability() {
    let src = include_str!("fixtures/waivers.rs");
    let (findings, waived) = run(&serving_file(), src);
    // Own-line, trailing, and multi-code (PL001 + PL003 on the todo! line)
    // waivers suppress four findings in total.
    assert_eq!(waived, 4, "findings: {findings:?}");
    // The stale waiver fires PL006 once.
    assert_eq!(codes(&findings, "PL006").len(), 1, "findings: {findings:?}");
    // Missing reason, unknown code, unwaivable code: three PL007s…
    assert_eq!(codes(&findings, "PL007").len(), 3, "findings: {findings:?}");
    // …and the unwrap() under each malformed waiver stays unwaived.
    assert_eq!(codes(&findings, "PL001").len(), 3, "findings: {findings:?}");
}

#[test]
fn relaxed_fixture_needs_a_waiver_outside_counters() {
    let src = include_str!("fixtures/relaxed.rs");
    let (findings, waived) = run(&exec_file(), src);
    // One unwaived Relaxed; the waived one; stronger orderings and
    // comment/string mentions are free.
    assert_eq!(codes(&findings, "PL004").len(), 1, "findings: {findings:?}");
    assert_eq!(waived, 1);
}

#[test]
fn relaxed_is_free_inside_the_counters_module() {
    let src = include_str!("fixtures/relaxed.rs");
    let mut file = exec_file();
    file.rel_path = "crates/exec/src/counters.rs".into();
    file.module_path = "pandora_exec::counters".into();
    let (findings, _) = run(&file, src);
    assert!(codes(&findings, "PL004").is_empty(), "{findings:?}");
    // The fixture's waiver now suppresses nothing → stale (PL006).
    assert_eq!(codes(&findings, "PL006").len(), 1, "{findings:?}");
}

#[test]
fn hash_collections_banned_in_kernel_crates_only() {
    let src = include_str!("fixtures/hash_kernel.rs");
    let (findings, _) = run(&kernel_file(), src);
    let pl005 = codes(&findings, "PL005");
    // use-line (HashMap + HashSet), map type + ctor, set type: 5 tokens.
    assert_eq!(pl005.len(), 5, "findings: {findings:?}");

    // The same source in a non-kernel crate is fine.
    let mut file = kernel_file();
    file.crate_name = "pandora-hdbscan".into();
    file.module_path = "pandora_hdbscan::fixture".into();
    file.rel_path = "crates/hdbscan/src/fixture.rs".into();
    let (findings, _) = run(&file, src);
    assert!(codes(&findings, "PL005").is_empty(), "{findings:?}");
}

#[test]
fn cfg_test_ranges_exempt_unit_tests_from_pl001() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
               #[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n";
    let mut file = serving_file();
    file.cfg_test_ranges = vec![(4, 9)];
    let (findings, _) = run(&file, src);
    // Only the production unwrap on line 2 fires.
    assert_eq!(codes(&findings, "PL001"), vec![2], "findings: {findings:?}");
}
