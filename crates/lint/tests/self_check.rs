//! The analyzer eating its own dog food: the real workspace must come out
//! clean, and the check must be *sensitive* — tampering with a guarded
//! file (adding an `unwrap()` to the daemon, deleting a SAFETY comment)
//! must produce findings. The sensitivity half is what makes the clean
//! half meaningful: a checker that cannot fail proves nothing.

use std::path::{Path, PathBuf};

use pandora_lint::{all_rules, Analyzer, SourceFile, TargetKind};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let root = workspace_root();
    let report = Analyzer::default()
        .analyze_workspace(&root)
        .expect("analysis runs");
    assert!(
        report.files_analyzed > 100,
        "module graph collapsed: only {} files reached",
        report.files_analyzed
    );
    assert!(
        report.findings.is_empty(),
        "unwaived findings in the workspace:\n{}",
        report.to_human()
    );
    // The PL004 audit waivers must actually be load-bearing.
    assert!(
        report.waived.iter().any(|w| w.finding.rule == "PL004"),
        "expected audited Relaxed waivers to be exercised"
    );
}

/// The file identity of the serving daemon as the module walker computes
/// it — the tamper tests below must run under the same identity the real
/// analysis uses, or they would prove nothing about the serving tier.
fn daemon_identity(root: &Path) -> SourceFile {
    let graph = pandora_lint::walk_workspace(root).expect("walk");
    graph
        .files
        .iter()
        .find(|f| f.rel_path == "crates/hdbscan/src/daemon.rs")
        .expect("daemon.rs is reachable from the hdbscan crate root")
        .clone()
}

#[test]
fn daemon_is_inside_the_computed_serving_set() {
    let root = workspace_root();
    let file = daemon_identity(&root);
    assert_eq!(file.module_path, "pandora_hdbscan::daemon");
    assert_eq!(file.target, TargetKind::Lib);
}

#[test]
fn adding_an_unwrap_to_the_daemon_fails_the_check() {
    let root = workspace_root();
    let file = daemon_identity(&root);
    let src = std::fs::read_to_string(root.join(&file.rel_path)).expect("read daemon.rs");
    let tampered = format!("{src}\nfn injected(v: Option<u32>) -> u32 {{\n    v.unwrap()\n}}\n");
    let analyzer = Analyzer::default();
    let rules = all_rules();
    let (clean, _) = analyzer.check_source(&file, &src, &rules);
    assert!(clean.is_empty(), "daemon.rs is not clean before tampering");
    let (findings, _) = analyzer.check_source(&file, &tampered, &rules);
    assert!(
        findings.iter().any(|f| f.rule == "PL001"),
        "injected unwrap() was not caught: {findings:?}"
    );
}

#[test]
fn deleting_a_safety_comment_fails_the_check() {
    let root = workspace_root();
    let rel = "crates/exec/src/unsafe_slice.rs";
    let graph = pandora_lint::walk_workspace(&root).expect("walk");
    let file = graph
        .files
        .iter()
        .find(|f| f.rel_path == rel)
        .expect("unsafe_slice.rs is reachable")
        .clone();
    let src = std::fs::read_to_string(root.join(rel)).expect("read");
    let stripped: String = src
        .lines()
        .filter(|l| !l.trim_start().starts_with("// SAFETY:"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(src, stripped, "fixture file has SAFETY comments to strip");
    let analyzer = Analyzer::default();
    let rules = all_rules();
    let (clean, _) = analyzer.check_source(&file, &src, &rules);
    assert!(clean.is_empty(), "unsafe_slice.rs is not clean as-is");
    let (findings, _) = analyzer.check_source(&file, &stripped, &rules);
    assert!(
        findings.iter().any(|f| f.rule == "PL002"),
        "stripped SAFETY comments were not caught: {findings:?}"
    );
}
