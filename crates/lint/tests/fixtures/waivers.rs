//! Fixture: waiver parsing and accountability. Analyzed as a serving-tier
//! module so PL001 fires, then waivers are applied. Never compiled.

pub fn own_line_waiver(input: Option<u32>) -> u32 {
    // pandora-lint: allow(PL001) — fixture: the invariant is established one line up
    input.unwrap()
}

pub fn trailing_waiver(input: Option<u32>) -> u32 {
    input.unwrap() // pandora-lint: allow(PL001) — fixture: trailing form
}

pub fn multi_code_waiver() -> u32 {
    // pandora-lint: allow(PL001, PL003) — fixture: one waiver, two rules
    todo!()
}

pub fn stale_waiver(input: Option<u32>) -> u32 {
    // pandora-lint: allow(PL001) — fixture: nothing below actually fires
    input.unwrap_or(7)
}

pub fn missing_reason(input: Option<u32>) -> u32 {
    // pandora-lint: allow(PL001)
    input.unwrap()
}

pub fn unknown_code(input: Option<u32>) -> u32 {
    // pandora-lint: allow(PL999) — fixture: no such rule
    input.unwrap()
}

pub fn unwaivable_code(input: Option<u32>) -> u32 {
    // pandora-lint: allow(PL006) — fixture: accountability rules cannot be waived
    input.unwrap()
}
