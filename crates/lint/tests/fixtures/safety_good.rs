//! Fixture: every PL002-accepted way of documenting an `unsafe` site.
//! Never compiled — analyzed as text by fixtures.rs.

pub fn plain_comment(p: *const u32) -> u32 {
    // SAFETY: the caller handed us a valid, aligned pointer.
    unsafe { *p }
}

pub fn attrs_between_comment_and_unsafe(p: *const u32) -> u32 {
    // SAFETY: attribute lines may sit between the comment and the keyword.
    #[allow(clippy::let_and_return)]
    let v = unsafe { *p };
    v
}

pub fn stacked_comments(p: *const u32) -> u32 {
    // SAFETY: the justification may be buried under later comment lines —
    // the checker walks the whole run of comments above the site.
    // (This line is unrelated prose in the same run.)
    unsafe { *p }
}

/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads — a rustdoc caller contract counts as the
/// SAFETY documentation for an `unsafe fn` declaration.
pub unsafe fn doc_contract(p: *const u32) -> u32 {
    // SAFETY: caller upholds the documented contract.
    unsafe { *p }
}

pub fn trailing_same_line(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: trailing on the same line is accepted too
}

// SAFETY: no shared state — the marker type is trivially thread-safe.
unsafe impl Send for Marker {}

pub struct Marker(*const u32);
