//! Fixture: a serving-tier module where every banned spelling appears
//! only in places a real lexer must skip — strings, raw strings, chars,
//! comments (line, block, nested block) — plus the tricky non-calls the
//! token matcher must not confuse with `Option::unwrap`.
//!
//! A grep-based checker flags this file; the lexer-based one must not.

// A line comment mentioning .unwrap() and panic!("oops").

/* A block comment with .expect("x") inside.
   /* And a NESTED one with todo!() — Rust block comments nest. */
   Still inside the outer comment: unreachable!().
*/

pub fn handle(input: Option<u32>) -> Result<String, String> {
    let doc = "calling .unwrap() here would panic!(\"boom\")";
    let raw = r#"raw strings swallow .expect("reasons") and "quotes""#;
    let hashes = r##"even with "# inside: x.unwrap()"##;
    let ch = '"'; // a char literal is not a string opener
    let lifetime_not_char: &'static str = "named: 'unwrap"; // lifetime vs char
    let v = input.ok_or("missing")?;
    Ok(format!("{doc}{raw}{hashes}{ch}{lifetime_not_char}{v}"))
}

pub fn unwrap_like_names(v: u32) -> u32 {
    // Idents that merely *contain* the banned names are fine: the rule
    // matches method-call tokens, not substrings.
    fn unwrap_config(x: u32) -> u32 {
        x
    }
    let expected = unwrap_config(v);
    expected
}
