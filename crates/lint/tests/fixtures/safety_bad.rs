//! Fixture: PL002 violations — `unsafe` sites whose SAFETY comment is
//! missing, detached, or on the wrong side. Never compiled.

pub fn naked_block(p: *const u32) -> u32 {
    unsafe { *p } // PL002 fires: nothing documents this block
}

pub fn detached_comment(p: *const u32) -> u32 {
    // SAFETY: this comment is orphaned by the code line below it,
    // so it does NOT count.
    let offset = 1;
    unsafe { *p.add(offset) } // PL002: comment detached
}

pub unsafe fn naked_unsafe_fn(p: *mut u32) {
    *p = 0;
}
