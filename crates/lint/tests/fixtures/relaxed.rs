//! Fixture: PL004 — `Ordering::Relaxed` outside the counters module.
//! Never compiled.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unwaived_relaxed(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // PL004: no waiver, not a counters module
}

pub fn waived_relaxed(c: &AtomicU64) {
    // pandora-lint: allow(PL004) — fixture: commutative RMW, joined before read
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn stronger_orderings_are_fine(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::AcqRel);
    c.load(Ordering::Acquire)
}

pub fn relaxed_in_prose_is_fine() -> &'static str {
    // A comment saying Ordering::Relaxed does not fire.
    "neither does the string \"Ordering::Relaxed\""
}
