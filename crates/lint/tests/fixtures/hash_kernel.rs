//! Fixture: PL005 — HashMap/HashSet in a compute-kernel crate, where
//! iteration order would break the serial ≡ threaded determinism
//! contract. Never compiled.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn uses_hash_map(keys: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new(); // PL005 (twice: type + ctor)
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.len()
}

pub fn uses_hash_set(keys: &[u32]) -> usize {
    let s: HashSet<u32> = keys.iter().copied().collect(); // PL005
    s.len()
}

pub fn btree_is_deterministic(keys: &[u32]) -> usize {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m.len()
}
