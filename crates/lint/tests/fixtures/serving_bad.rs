//! Fixture: a serving-tier module that violates PL001 in every way the
//! rule knows about. Never compiled — analyzed as text by fixtures.rs.

pub fn handle(input: Option<u32>) -> u32 {
    let v = input.unwrap(); // PL001: unwrap in serving tier
    if v == 0 {
        panic!("zero"); // PL001: panic! in serving tier
    }
    let w = input.expect("present"); // PL001: expect in serving tier
    match w {
        0 => unreachable!(), // PL001: unreachable! in serving tier
        1 => todo!(),        // PL001: todo! (also PL003 everywhere)
        2 => unimplemented!(), // PL001: unimplemented!
        _ => v + w,
    }
}
