//! Workspace module-graph walker.
//!
//! Rules want *computed* file sets ("the serving tier", "the compute
//! kernels"), not hand-maintained lists that silently rot as modules are
//! added. This walker reads the workspace manifest, finds every crate
//! target root (lib, bins, tests, examples, benches), and resolves
//! `mod foo;` / `#[path = "…"] mod foo;` declarations recursively — so a
//! new `crates/hdbscan/src/daemon/tls.rs` joins the serving-tier set the
//! moment `daemon.rs` declares it, with no list to update.
//!
//! Vendored dependency shims (`vendor/`) are workspace members but are
//! stand-ins for external code; they are excluded from analysis.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, TokKind};

/// Which Cargo target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    Lib,
    Bin,
    Test,
    Example,
    Bench,
}

impl TargetKind {
    pub fn as_str(self) -> &'static str {
        match self {
            TargetKind::Lib => "lib",
            TargetKind::Bin => "bin",
            TargetKind::Test => "test",
            TargetKind::Example => "example",
            TargetKind::Bench => "bench",
        }
    }
}

/// One analyzed source file with its resolved place in the module graph.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo package name, e.g. `pandora-mst`.
    pub crate_name: String,
    /// Resolved module path. For lib modules this is the real Rust path
    /// (`pandora_hdbscan::daemon::json`); for bin roots it is `bin:<name>`;
    /// for test/example/bench roots, `<kind>:<stem>`.
    pub module_path: String,
    pub target: TargetKind,
    /// Line ranges (1-indexed, inclusive) of inline `#[cfg(test)] mod`
    /// blocks — unit-test code embedded in production files.
    pub cfg_test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// True if `line` falls inside an inline `#[cfg(test)]` module.
    pub fn in_cfg_test(&self, line: u32) -> bool {
        self.cfg_test_ranges
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }
}

/// The resolved module graph of the workspace.
#[derive(Debug, Default)]
pub struct ModuleGraph {
    pub files: Vec<SourceFile>,
}

/// Walk the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`) and resolve every first-party source file.
pub fn walk_workspace(root: &Path) -> io::Result<ModuleGraph> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut package_dirs: Vec<PathBuf> = Vec::new();
    // The workspace manifest may itself be a package (the facade crate).
    if manifest.contains("[package]") {
        package_dirs.push(root.to_path_buf());
    }
    for member in workspace_members(&manifest) {
        if member.starts_with("vendor/") || member.starts_with("vendor\\") {
            continue; // dependency shims: external code, not ours to lint
        }
        package_dirs.push(root.join(member));
    }

    let mut graph = ModuleGraph::default();
    for dir in package_dirs {
        let crate_name = package_name(&dir).unwrap_or_else(|| {
            dir.file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "unknown".into())
        });
        collect_package(root, &dir, &crate_name, &mut graph)?;
    }
    graph.files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(graph)
}

/// Extract the `members = [...]` list from a workspace manifest. A full
/// TOML parser would be overkill for the two keys we need; this accepts
/// the subset Cargo itself writes (quoted strings, comments, trailing
/// commas).
fn workspace_members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Some(start) = manifest.find("members") else {
        return out;
    };
    let Some(open_rel) = manifest[start..].find('[') else {
        return out;
    };
    let after = &manifest[start + open_rel + 1..];
    let Some(close) = after.find(']') else {
        return out;
    };
    for line in after[..close].lines() {
        let line = line.split('#').next().unwrap_or("");
        let mut rest = line;
        while let Some(q0) = rest.find('"') {
            let tail = &rest[q0 + 1..];
            let Some(q1) = tail.find('"') else { break };
            out.push(tail[..q1].to_string());
            rest = &tail[q1 + 1..];
        }
    }
    out
}

/// First `name = "…"` after `[package]` in the crate manifest.
fn package_name(dir: &Path) -> Option<String> {
    let manifest = fs::read_to_string(dir.join("Cargo.toml")).ok()?;
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines().skip(1) {
        let t = line.trim();
        if t.starts_with('[') {
            break; // next section
        }
        if let Some(rest) = t.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                return rest
                    .strip_prefix('"')
                    .and_then(|r| r.split('"').next())
                    .map(|s| s.to_string());
            }
        }
    }
    None
}

fn collect_package(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    graph: &mut ModuleGraph,
) -> io::Result<()> {
    let lib_prefix = crate_name.replace('-', "_");
    let lib = dir.join("src/lib.rs");
    if lib.is_file() {
        resolve_tree(root, &lib, &lib_prefix, crate_name, TargetKind::Lib, graph)?;
    }
    let main = dir.join("src/main.rs");
    if main.is_file() {
        let name = format!("bin:{crate_name}");
        resolve_tree(root, &main, &name, crate_name, TargetKind::Bin, graph)?;
    }
    for (subdir, kind, prefix) in [
        ("src/bin", TargetKind::Bin, "bin"),
        ("tests", TargetKind::Test, "test"),
        ("examples", TargetKind::Example, "example"),
        ("benches", TargetKind::Bench, "bench"),
    ] {
        let d = dir.join(subdir);
        if !d.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "rs"))
            .collect();
        entries.sort();
        for path in entries {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let name = format!("{prefix}:{stem}");
            resolve_tree(root, &path, &name, crate_name, kind, graph)?;
        }
    }
    Ok(())
}

/// Recursively resolve `file` and every file module it declares.
fn resolve_tree(
    root: &Path,
    file: &Path,
    module_path: &str,
    crate_name: &str,
    target: TargetKind,
    graph: &mut ModuleGraph,
) -> io::Result<()> {
    let src = fs::read_to_string(file)?;
    let lexed = lex(&src);
    let rel = rel_path(root, file);
    if graph.files.iter().any(|f| f.rel_path == rel) {
        return Ok(()); // shared module (e.g. tests/common) reached twice
    }

    // Directory that child file-modules resolve against: the file's own
    // directory for crate roots and `mod.rs`, `<dir>/<stem>/` otherwise.
    let file_dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
    let is_root_like = file.file_name().is_some_and(|n| n == "mod.rs")
        || matches!(
            target,
            TargetKind::Bin | TargetKind::Test | TargetKind::Example | TargetKind::Bench
        ) && !module_path.contains("::")
        || file
            .file_name()
            .is_some_and(|n| n == "lib.rs" || n == "main.rs");
    let child_dir = if is_root_like {
        file_dir.clone()
    } else {
        let stem = file
            .file_stem()
            .map(|s| s.to_os_string())
            .unwrap_or_default();
        file_dir.join(stem)
    };

    let scan = scan_mods(&lexed);
    graph.files.push(SourceFile {
        rel_path: rel,
        crate_name: crate_name.to_string(),
        module_path: module_path.to_string(),
        target,
        cfg_test_ranges: scan.cfg_test_ranges,
    });

    for decl in scan.file_mods {
        let child_path = format!("{module_path}::{}", decl.name);
        let candidates: Vec<PathBuf> = match decl.path_attr {
            Some(p) => vec![file_dir.join(p)],
            None => vec![
                child_dir.join(format!("{}.rs", decl.name)),
                child_dir.join(&decl.name).join("mod.rs"),
            ],
        };
        if let Some(found) = candidates.into_iter().find(|c| c.is_file()) {
            resolve_tree(root, &found, &child_path, crate_name, target, graph)?;
        }
        // A `mod x;` with no file on disk only occurs under cfg gates we
        // don't evaluate; skipping it is the forgiving choice.
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// A `mod name;` declaration found in a file.
struct FileModDecl {
    name: String,
    /// Value of a `#[path = "…"]` attribute directly above, if any.
    path_attr: Option<String>,
}

struct ModScan {
    file_mods: Vec<FileModDecl>,
    cfg_test_ranges: Vec<(u32, u32)>,
}

/// Scan a lexed file for module declarations and inline `#[cfg(test)]`
/// module spans. Tracks brace depth so `mod x;` inside an inline module
/// is still found (its parent directory does not change for the cases we
/// care about: this tree only nests file mods under crate roots and
/// `mod.rs` files).
fn scan_mods(lexed: &Lexed) -> ModScan {
    let toks = &lexed.tokens;
    let mut file_mods = Vec::new();
    let mut cfg_test_ranges = Vec::new();
    let mut depth: i32 = 0;
    // Stack of (close_depth, start_line) for open #[cfg(test)] mod blocks.
    let mut test_blocks: Vec<(i32, u32)> = Vec::new();
    let mut pending_cfg_test = false;
    let mut pending_path: Option<String> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct('#') => {
                // Attribute: `#[…]` or `#![…]`. Collect its tokens.
                let mut j = i + 1;
                if j < toks.len() && toks[j].kind == TokKind::Punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].kind == TokKind::Punct('[') {
                    let mut bracket = 0i32;
                    let start = j;
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct('[') => bracket += 1,
                            TokKind::Punct(']') => {
                                bracket -= 1;
                                if bracket == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let attr: Vec<&str> = toks[start..=j.min(toks.len() - 1)]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect();
                    if attr.contains(&"cfg") && attr.contains(&"test") && !attr.contains(&"not") {
                        pending_cfg_test = true;
                    }
                    if attr.get(1) == Some(&"path") {
                        // `[ path = "…" ]` — the literal retains quotes.
                        if let Some(lit) = toks[start..=j.min(toks.len() - 1)]
                            .iter()
                            .find(|t| t.kind == TokKind::Literal)
                        {
                            pending_path = Some(lit.text.trim_matches('"').to_string());
                        }
                    }
                    i = j + 1;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                if let Some(&(close_depth, start_line)) = test_blocks.last() {
                    if depth == close_depth {
                        cfg_test_ranges.push((start_line, t.line));
                        test_blocks.pop();
                    }
                }
            }
            TokKind::Ident if t.text == "mod" => {
                // `mod NAME ;` or `mod NAME {` (skipping nothing between:
                // visibility precedes `mod`, not follows it).
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        match toks.get(i + 2).map(|t| &t.kind) {
                            Some(TokKind::Punct(';')) => {
                                file_mods.push(FileModDecl {
                                    name: name_tok.text.clone(),
                                    path_attr: pending_path.take(),
                                });
                            }
                            Some(TokKind::Punct('{')) => {
                                if pending_cfg_test {
                                    test_blocks.push((depth, t.line));
                                }
                                depth += 1;
                                pending_path = None;
                                i += 3;
                                pending_cfg_test = false;
                                continue;
                            }
                            _ => {}
                        }
                    }
                }
                pending_cfg_test = false;
                pending_path = None;
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "fn" | "struct"
                        | "enum"
                        | "impl"
                        | "trait"
                        | "use"
                        | "static"
                        | "const"
                        | "type"
                        | "macro_rules"
                ) =>
            {
                // Attributes pending on a non-mod item do not carry over.
                pending_cfg_test = false;
                pending_path = None;
            }
            _ => {}
        }
        i += 1;
    }
    // Unterminated test blocks (malformed file): close at last token.
    if let Some(last) = toks.last() {
        for (_, start) in test_blocks {
            cfg_test_ranges.push((start, last.line));
        }
    }
    ModScan {
        file_mods,
        cfg_test_ranges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_parse() {
        let m = r#"
[workspace]
members = [
    "crates/exec", # comment
    "vendor/rand",
]
"#;
        assert_eq!(workspace_members(m), ["crates/exec", "vendor/rand"]);
    }

    #[test]
    fn cfg_test_ranges_cover_inline_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn b() {}\n";
        let scan = scan_mods(&lex(src));
        assert_eq!(scan.cfg_test_ranges, vec![(3, 5)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_block() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn t() {}\n}\n";
        let scan = scan_mods(&lex(src));
        assert!(scan.cfg_test_ranges.is_empty());
    }

    #[test]
    fn file_mods_and_path_attr() {
        let src =
            "mod plain;\n#[path = \"other/file.rs\"]\nmod renamed;\nmod inline { mod nested; }\n";
        let scan = scan_mods(&lex(src));
        let names: Vec<_> = scan.file_mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["plain", "renamed", "nested"]);
        assert_eq!(
            scan.file_mods[1].path_attr.as_deref(),
            Some("other/file.rs")
        );
        assert_eq!(scan.file_mods[0].path_attr, None);
    }

    #[test]
    fn attr_on_fn_does_not_leak_to_next_mod() {
        let src = "#[cfg(test)]\nfn helper() {}\nmod real { fn x() {} }\n";
        let scan = scan_mods(&lex(src));
        assert!(scan.cfg_test_ranges.is_empty());
    }

    #[test]
    fn walks_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let graph = walk_workspace(&root).unwrap();
        let find = |p: &str| {
            graph
                .files
                .iter()
                .find(|f| f.rel_path == p)
                .unwrap_or_else(|| panic!("{p} not in module graph"))
        };
        assert_eq!(
            find("crates/exec/src/scan.rs").module_path,
            "pandora_exec::scan"
        );
        assert_eq!(
            find("crates/hdbscan/src/daemon/json.rs").module_path,
            "pandora_hdbscan::daemon::json"
        );
        assert_eq!(
            find("crates/core/src/baseline/union_find.rs").module_path,
            "pandora_core::baseline::union_find"
        );
        assert_eq!(find("src/bin/pandorad.rs").module_path, "bin:pandorad");
        assert!(graph
            .files
            .iter()
            .all(|f| !f.rel_path.starts_with("vendor/")));
    }
}
