//! Inline waivers.
//!
//! Syntax (the reason is mandatory — a waiver without an argument is a
//! finding, not a suppression):
//!
//! ```text
//! // pandora-lint: allow(PL004) — monotonic stats counter, read only for reporting
//! let n = self.hits.fetch_add(1, Ordering::Relaxed);
//! ```
//!
//! An own-line waiver covers the next line that carries code; a trailing
//! waiver covers its own line. One waiver may name several rules:
//! `allow(PL001, PL003)`.
//!
//! Two failure modes are themselves findings so waivers cannot rot:
//! * **PL006** — a waiver whose rule did not fire on the covered line
//!   (stale allow: the offending code moved or was fixed);
//! * **PL007** — a malformed waiver (unparseable, unknown code, missing
//!   reason).
//!
//! PL006/PL007 cannot be waived.

use crate::lexer::Lexed;
use crate::report::Finding;
use crate::rules::waivable_codes;

/// A parsed, well-formed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub codes: Vec<String>,
    pub reason: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// The single line whose findings this waiver suppresses.
    pub covers_line: u32,
}

/// Result of scanning one file's comments for waivers.
#[derive(Debug, Default)]
pub struct WaiverScan {
    pub waivers: Vec<Waiver>,
    /// PL007 findings for malformed directives.
    pub malformed: Vec<(u32, String)>,
}

/// Scan lexed comments for `pandora-lint:` directives.
pub fn scan_waivers(lexed: &Lexed) -> WaiverScan {
    let known = waivable_codes();
    let mut out = WaiverScan::default();
    for c in &lexed.comments {
        // Strip doc markers (`///` lexes as text starting "/") and space.
        let body = c.text.trim_start_matches(['/', '!', '*']).trim();
        let Some(directive) = body.strip_prefix("pandora-lint:") else {
            continue;
        };
        let directive = directive.trim();
        let Some(rest) = directive.strip_prefix("allow") else {
            out.malformed.push((
                c.line_start,
                format!("unknown pandora-lint directive `{directive}` — only `allow(...)` exists"),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            out.malformed
                .push((c.line_start, "expected `allow(<rule>, …)`".to_string()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.malformed
                .push((c.line_start, "unclosed `allow(` in waiver".to_string()));
            continue;
        };
        let codes: Vec<String> = rest[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if codes.is_empty() {
            out.malformed
                .push((c.line_start, "waiver names no rule codes".to_string()));
            continue;
        }
        if let Some(bad) = codes.iter().find(|code| !known.contains(&code.as_str())) {
            out.malformed.push((
                c.line_start,
                format!(
                    "unknown or unwaivable rule code `{bad}` (waivable: {})",
                    known.join(", ")
                ),
            ));
            continue;
        }
        // Mandatory reason after a separator: em dash, hyphen(s), or colon.
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix('\u{2014}') // —
            .or_else(|| after.strip_prefix('\u{2013}')) // –
            .or_else(|| after.strip_prefix("--"))
            .or_else(|| after.strip_prefix('-'))
            .or_else(|| after.strip_prefix(':'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            out.malformed.push((
                c.line_start,
                "waiver has no reason — `// pandora-lint: allow(PLxxx) — <why this is sound>`"
                    .to_string(),
            ));
            continue;
        }
        let covers_line = if c.own_line {
            match lexed.next_code_line(c.line_end) {
                Some(l) => l,
                None => {
                    out.malformed.push((
                        c.line_start,
                        "waiver is not followed by any code line".to_string(),
                    ));
                    continue;
                }
            }
        } else {
            c.line_start
        };
        out.waivers.push(Waiver {
            codes,
            reason: reason.to_string(),
            line: c.line_start,
            covers_line,
        });
    }
    out
}

/// Apply waivers to one file's findings. Returns `(unwaived, waived)` and
/// appends PL006 stale-waiver findings for every (waiver, code) pair that
/// suppressed nothing.
pub fn apply_waivers(
    rel_path: &str,
    findings: Vec<Finding>,
    scan: &WaiverScan,
) -> (Vec<Finding>, Vec<WaivedFinding>) {
    let mut used: Vec<(usize, usize)> = Vec::new(); // (waiver idx, code idx)
    let mut unwaived = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        let hit = scan.waivers.iter().enumerate().find_map(|(wi, w)| {
            (w.covers_line == f.line)
                .then(|| w.codes.iter().position(|c| *c == f.rule).map(|ci| (wi, ci)))
                .flatten()
        });
        match hit {
            Some((wi, ci)) => {
                if !used.contains(&(wi, ci)) {
                    used.push((wi, ci));
                }
                waived.push(WaivedFinding {
                    finding: f,
                    reason: scan.waivers[wi].reason.clone(),
                    waiver_line: scan.waivers[wi].line,
                });
            }
            None => unwaived.push(f),
        }
    }
    // Stale waivers: every (waiver, code) that suppressed nothing.
    for (wi, w) in scan.waivers.iter().enumerate() {
        for (ci, code) in w.codes.iter().enumerate() {
            if !used.contains(&(wi, ci)) {
                unwaived.push(Finding {
                    rule: "PL006".to_string(),
                    file: rel_path.to_string(),
                    line: w.line,
                    message: format!(
                        "stale waiver: `{code}` does not fire on line {} — delete the \
                         allow or move it back beside the code it audits",
                        w.covers_line
                    ),
                });
            }
        }
    }
    // Malformed waivers.
    for (line, msg) in &scan.malformed {
        unwaived.push(Finding {
            rule: "PL007".to_string(),
            file: rel_path.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    (unwaived, waived)
}

/// A finding that was suppressed by a waiver (still reported, for audit).
#[derive(Debug, Clone)]
pub struct WaivedFinding {
    pub finding: Finding,
    pub reason: String,
    pub waiver_line: u32,
}
