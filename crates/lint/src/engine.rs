//! The analysis driver: walk the module graph, lex each file, run every
//! in-scope rule, apply waivers, and assemble the [`Report`].

use std::fs;
use std::io;
use std::path::Path;

use crate::config::Config;
use crate::lexer::lex;
use crate::modgraph::{walk_workspace, SourceFile};
use crate::report::{Finding, Report};
use crate::rules::{all_rules, Rule};
use crate::waiver::{apply_waivers, scan_waivers, WaivedFinding};

/// The analyzer. Construct with a [`Config`] (or [`Analyzer::default`] for
/// repo policy) and call [`Analyzer::analyze_workspace`].
#[derive(Debug, Default)]
pub struct Analyzer {
    pub config: Config,
}

impl Analyzer {
    pub fn new(config: Config) -> Self {
        Analyzer { config }
    }

    /// Analyze the workspace rooted at `root` (directory containing the
    /// workspace `Cargo.toml`).
    pub fn analyze_workspace(&self, root: &Path) -> io::Result<Report> {
        let graph = walk_workspace(root)?;
        let rules = all_rules();
        let mut report = Report {
            root: root.display().to_string(),
            files_analyzed: graph.files.len(),
            ..Report::default()
        };
        for file in &graph.files {
            let src = fs::read_to_string(root.join(&file.rel_path))?;
            let (unwaived, waived) = self.check_source(file, &src, &rules);
            report.findings.extend(unwaived);
            report.waived.extend(waived);
        }
        report.sort();
        Ok(report)
    }

    /// Run every in-scope rule over one file's source text and apply its
    /// waivers. Exposed so fixture tests can drive the engine on synthetic
    /// [`SourceFile`]s without a workspace on disk.
    pub fn check_source(
        &self,
        file: &SourceFile,
        src: &str,
        rules: &[Box<dyn Rule>],
    ) -> (Vec<Finding>, Vec<WaivedFinding>) {
        let lexed = lex(src);
        let mut findings = Vec::new();
        for rule in rules {
            if rule.applies(file, &self.config) {
                rule.check(file, &lexed, &self.config, &mut findings);
            }
        }
        let scan = scan_waivers(&lexed);
        apply_waivers(&file.rel_path, findings, &scan)
    }
}
