//! CLI for `pandora-lint`.
//!
//! ```text
//! pandora-lint [--root DIR] [--format human|json] [--out FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use pandora_lint::{all_rules, Analyzer, Config};

struct Args {
    root: Option<PathBuf>,
    format: Format,
    out: Option<PathBuf>,
    list_rules: bool,
}

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
}

fn usage() -> &'static str {
    "usage: pandora-lint [--root DIR] [--format human|json] [--out FILE] [--list-rules]\n\
     \n\
     Analyzes the workspace module graph against the PL rule catalog\n\
     (docs/ANALYSIS.md). --out writes the JSON report to FILE regardless\n\
     of --format. Exit code 1 means unwaived findings."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        format: Format::Human,
        out: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.format = Format::Human,
                Some("json") => args.format = Format::Json,
                other => return Err(format!("--format human|json, got {other:?}")),
            },
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Find the workspace root: walk up from cwd to the first Cargo.toml
/// declaring `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("pandora-lint: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in all_rules() {
            let m = rule.meta();
            println!("{}  {:<26} {}", m.code, m.name, m.summary);
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = args.root.or_else(find_root) else {
        eprintln!("pandora-lint: no workspace root found (try --root)");
        return ExitCode::from(2);
    };

    let analyzer = Analyzer::new(Config::default());
    let report = match analyzer.analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pandora-lint: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, report.to_json()) {
            eprintln!("pandora-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Human => print!("{}", report.to_human()),
        Format::Json => print!("{}", report.to_json()),
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
