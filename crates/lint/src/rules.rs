//! The rule catalog.
//!
//! Every rule has a stable code (`PL001`…), a computed scope (derived from
//! the module graph — see [`crate::modgraph`]), and a token-level check
//! that runs on the [`crate::lexer`] output, so rule text inside strings,
//! raw strings, and comments can never fire a finding.
//!
//! Adding a rule: implement [`Rule`], give it the next free code, push it
//! in [`all_rules`], add fixtures under `tests/fixtures/`, and document it
//! in `docs/ANALYSIS.md`. Codes are never reused or renumbered.

use crate::config::Config;
use crate::lexer::{Lexed, TokKind};
use crate::modgraph::{SourceFile, TargetKind};
use crate::report::Finding;

/// Static metadata for one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    pub code: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
}

/// A single static-analysis rule.
pub trait Rule {
    fn meta(&self) -> RuleMeta;
    /// Whether this rule runs on `file` at all (scope is computed from the
    /// module graph, never from a hand-maintained file list).
    fn applies(&self, file: &SourceFile, cfg: &Config) -> bool;
    /// Emit findings for one file. Only called when `applies` is true.
    fn check(&self, file: &SourceFile, lexed: &Lexed, cfg: &Config, out: &mut Vec<Finding>);
}

/// The full registry, in code order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Pl001ServingPanics),
        Box::new(Pl002SafetyComment),
        Box::new(Pl003DebugScaffolding),
        Box::new(Pl004RelaxedOrdering),
        Box::new(Pl005HashIteration),
    ]
}

/// Codes that may appear in a waiver. PL006/PL007 are emitted by the
/// waiver machinery itself and cannot be waived (that way lies regress).
pub fn waivable_codes() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.meta().code).collect()
}

fn finding(meta: RuleMeta, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: meta.code.to_string(),
        file: file.rel_path.clone(),
        line,
        message,
    }
}

/// True for files under the first-party source trees the debug-hygiene
/// rules patrol (`crates/`, `src/`).
fn in_first_party_tree(file: &SourceFile) -> bool {
    file.rel_path.starts_with("crates/") || file.rel_path.starts_with("src/")
}

// ---------------------------------------------------------------------------
// PL001 — no panic paths in the serving tier
// ---------------------------------------------------------------------------

/// The serving tier promises "no public entry point panics on user input"
/// (docs/SERVING.md). Its file set is computed: every module matched by
/// [`Config::serving_selectors`], including submodules added later.
/// Inline `#[cfg(test)]` modules are exempt: unit tests are not entry
/// points, and panicking on a violated test expectation is their job.
pub struct Pl001ServingPanics;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

impl Rule for Pl001ServingPanics {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            code: "PL001",
            name: "serving-tier-panic",
            summary: "no panic!/unwrap()/expect()/unreachable!/todo!/unimplemented! \
                      in the serving-tier module set",
        }
    }

    fn applies(&self, file: &SourceFile, cfg: &Config) -> bool {
        cfg.serving_selectors.iter().any(|s| s.matches(file))
    }

    fn check(&self, file: &SourceFile, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Finding>) {
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if file.in_cfg_test(t.line) {
                continue;
            }
            let next_is = |k: TokKind| toks.get(i + 1).is_some_and(|n| n.kind == k);
            if PANIC_MACROS.contains(&t.text.as_str()) && next_is(TokKind::Punct('!')) {
                out.push(finding(
                    self.meta(),
                    file,
                    t.line,
                    format!(
                        "`{}!` in the serving tier — return a typed PandoraError instead",
                        t.text
                    ),
                ));
            }
            if PANIC_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].kind == TokKind::Punct('.')
                && next_is(TokKind::Punct('('))
            {
                out.push(finding(
                    self.meta(),
                    file,
                    t.line,
                    format!(
                        "`.{}()` in the serving tier — propagate the error instead",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PL002 — every unsafe site carries a SAFETY justification
// ---------------------------------------------------------------------------

/// Every `unsafe` block/fn/impl/trait must be immediately preceded by a
/// `// SAFETY:` comment stating the invariant that makes it sound.
/// Attribute lines (`#[inline]`…) may sit between the comment and the
/// `unsafe` keyword; a blank or code line breaks the association.
pub struct Pl002SafetyComment;

impl Rule for Pl002SafetyComment {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            code: "PL002",
            name: "undocumented-unsafe",
            summary: "every unsafe block/fn/impl must be immediately preceded by a \
                      `// SAFETY:` comment",
        }
    }

    fn applies(&self, _file: &SourceFile, _cfg: &Config) -> bool {
        true // everywhere the module graph reaches, tests and benches included
    }

    fn check(&self, file: &SourceFile, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Finding>) {
        let attr_lines = attribute_only_lines(lexed);
        let mut flagged: Vec<u32> = Vec::new();
        for t in lexed.tokens.iter() {
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            if flagged.contains(&t.line) {
                continue; // one finding per line; one comment covers it
            }
            if has_safety_comment(lexed, &attr_lines, t.line) {
                continue;
            }
            flagged.push(t.line);
            out.push(finding(
                self.meta(),
                file,
                t.line,
                "`unsafe` without an immediately-preceding `// SAFETY:` comment \
                 stating the invariant"
                    .to_string(),
            ));
        }
    }
}

/// Lines whose code tokens are all part of attributes (`#[…]` / `#![…]`).
fn attribute_only_lines(lexed: &Lexed) -> Vec<u32> {
    let toks = &lexed.tokens;
    // Mark token index ranges belonging to attributes.
    let mut in_attr = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct('#') {
            let mut j = i + 1;
            if j < toks.len() && toks[j].kind == TokKind::Punct('!') {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Punct('[') {
                let mut depth = 0i32;
                while j < toks.len() {
                    match toks[j].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end = j.min(toks.len() - 1);
                for flag in in_attr.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    let mut lines: Vec<u32> = Vec::new();
    let mut by_line: std::collections::BTreeMap<u32, bool> = std::collections::BTreeMap::new();
    for (k, t) in toks.iter().enumerate() {
        by_line
            .entry(t.line)
            .and_modify(|all| *all &= in_attr[k])
            .or_insert(in_attr[k]);
    }
    for (line, all_attr) in by_line {
        if all_attr {
            lines.push(line);
        }
    }
    lines
}

/// Accepted justification forms: an uppercase `SAFETY` marker (`SAFETY:`,
/// `SAFETY (both closures):` …) or a rustdoc `# Safety` section — the
/// caller-contract form conventional on `unsafe fn`/trait declarations.
fn is_safety_text(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

/// Does an own-line `// SAFETY:` comment sit immediately above `line`,
/// with only attribute lines or more comment lines between? Trailing
/// `// SAFETY:` on the same line also counts.
fn has_safety_comment(lexed: &Lexed, attr_lines: &[u32], line: u32) -> bool {
    // Same-line trailing comment.
    if lexed
        .comments
        .iter()
        .any(|c| c.line_start <= line && c.line_end >= line && is_safety_text(&c.text))
    {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        // A comment covering line l?
        if let Some(c) = lexed
            .comments
            .iter()
            .find(|c| c.own_line && c.line_start <= l && c.line_end >= l)
        {
            if is_safety_text(&c.text) {
                return true;
            }
            // Keep walking: a waiver or unrelated comment may stack above
            // the SAFETY line.
            l = c.line_start.saturating_sub(1);
            continue;
        }
        if attr_lines.contains(&l) {
            l -= 1;
            continue;
        }
        return false; // blank or code line: association broken
    }
    false
}

// ---------------------------------------------------------------------------
// PL003 — no debug scaffolding
// ---------------------------------------------------------------------------

/// `dbg!`/`todo!` are always scaffolding. `eprintln!` is scaffolding in
/// library code; binaries legitimately log to stderr, so bin targets are
/// exempt from the `eprintln!` half only.
pub struct Pl003DebugScaffolding;

impl Rule for Pl003DebugScaffolding {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            code: "PL003",
            name: "debug-scaffolding",
            summary: "no dbg!/todo!/eprintln! debug scaffolding in crates/ or src/ \
                      (eprintln! allowed in bin targets: stderr is their log channel)",
        }
    }

    fn applies(&self, file: &SourceFile, _cfg: &Config) -> bool {
        in_first_party_tree(file)
    }

    fn check(&self, file: &SourceFile, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Finding>) {
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let bang = toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct('!'));
            if !bang {
                continue;
            }
            match t.text.as_str() {
                "dbg" | "todo" => out.push(finding(
                    self.meta(),
                    file,
                    t.line,
                    format!("`{}!` is debug scaffolding — remove before merging", t.text),
                )),
                "eprintln" if file.target != TargetKind::Bin => out.push(finding(
                    self.meta(),
                    file,
                    t.line,
                    "`eprintln!` in non-bin code — library code must not write to \
                     stderr; return errors or use the trace counters"
                        .to_string(),
                )),
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PL004 — Relaxed atomics are audited
// ---------------------------------------------------------------------------

/// Every `Ordering::Relaxed` outside the allowlisted counters modules
/// needs an inline waiver stating why relaxed ordering is sound (what the
/// value is used for, why no happens-before edge is needed). The Borůvka
/// fetch_min flush and the DSU are the motivating audit targets.
/// `#[cfg(test)]` modules are exempt: test counters prove nothing about
/// production ordering.
pub struct Pl004RelaxedOrdering;

impl Rule for Pl004RelaxedOrdering {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            code: "PL004",
            name: "unaudited-relaxed-ordering",
            summary: "Ordering::Relaxed outside allowlisted counters modules must carry \
                      a waiver with the soundness argument",
        }
    }

    fn applies(&self, file: &SourceFile, cfg: &Config) -> bool {
        in_first_party_tree(file)
            && matches!(file.target, TargetKind::Lib | TargetKind::Bin)
            && !cfg
                .relaxed_allowed_modules
                .iter()
                .any(|m| module_matches(&file.module_path, m))
    }

    fn check(&self, file: &SourceFile, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Finding>) {
        let toks = &lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "Ordering" {
                continue;
            }
            let path_sep = toks
                .get(i + 1)
                .is_some_and(|a| a.kind == TokKind::Punct(':'))
                && toks
                    .get(i + 2)
                    .is_some_and(|a| a.kind == TokKind::Punct(':'));
            let relaxed = toks
                .get(i + 3)
                .is_some_and(|a| a.kind == TokKind::Ident && a.text == "Relaxed");
            if path_sep && relaxed && !file.in_cfg_test(t.line) {
                out.push(finding(
                    self.meta(),
                    file,
                    toks[i + 3].line,
                    "`Ordering::Relaxed` outside a counters module — waive with the \
                     argument for why no happens-before edge is needed"
                        .to_string(),
                ));
            }
        }
    }
}

/// Module selector match: exact path or prefix followed by `::`.
pub fn module_matches(module_path: &str, selector: &str) -> bool {
    module_path == selector
        || module_path
            .strip_prefix(selector)
            .is_some_and(|rest| rest.starts_with("::"))
}

// ---------------------------------------------------------------------------
// PL005 — no std hash collections in the compute kernels
// ---------------------------------------------------------------------------

/// The serial ≡ threaded bit-identical guarantee dies the moment
/// `HashMap`/`HashSet` iteration order leaks into results. Whether a
/// given use iterates is beyond a lexer, so the kernel crates ban the
/// types outright; a non-iterating use can be waived with a reason.
pub struct Pl005HashIteration;

impl Rule for Pl005HashIteration {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            code: "PL005",
            name: "hash-iteration-order",
            summary: "no HashMap/HashSet in the compute-kernel crates — iteration \
                      order would leak into results and break bit-identity",
        }
    }

    fn applies(&self, file: &SourceFile, cfg: &Config) -> bool {
        cfg.kernel_crates.iter().any(|c| c == &file.crate_name) && file.target == TargetKind::Lib
    }

    fn check(&self, file: &SourceFile, lexed: &Lexed, _cfg: &Config, out: &mut Vec<Finding>) {
        for t in lexed.tokens.iter() {
            if t.kind == TokKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet")
                && !file.in_cfg_test(t.line)
            {
                out.push(finding(
                    self.meta(),
                    file,
                    t.line,
                    format!(
                        "`{}` in a compute-kernel crate — use a Vec/BTreeMap or sort \
                         before iterating; hash iteration order breaks bit-identity",
                        t.text
                    ),
                ));
            }
        }
    }
}
