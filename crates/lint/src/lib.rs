//! `pandora-lint` — a repo-aware, dependency-free static analyzer that
//! makes the stack's two load-bearing contracts machine-checked instead of
//! grep-enforced folklore:
//!
//! * the serving tier's **"no public entry point panics on user input"**
//!   promise (docs/SERVING.md), and
//! * the **serial ≡ threaded bit-identical** guarantee every backend
//!   differential rests on.
//!
//! Three design decisions separate this from the grep steps it replaces:
//!
//! 1. **A real lexer** ([`lexer`]): rules see code tokens, never text
//!    inside strings, raw strings, chars, or (nested) comments.
//! 2. **Computed file sets** ([`modgraph`]): "the serving tier" is
//!    everything the module graph reaches from the serving selectors —
//!    a new daemon submodule is covered the moment it is declared.
//! 3. **Accountable waivers** ([`waiver`]): suppressions carry a mandatory
//!    reason, and a waiver whose rule stops firing is itself a finding
//!    (PL006), so allows cannot accumulate silently.
//!
//! The rule catalog lives in [`rules`] and is documented for humans in
//! `docs/ANALYSIS.md`.
//!
//! # Example
//!
//! ```no_run
//! use pandora_lint::{Analyzer, Config};
//! let report = Analyzer::new(Config::default())
//!     .analyze_workspace(std::path::Path::new("."))
//!     .expect("workspace readable");
//! if !report.clean() {
//!     eprintln!("{}", report.to_human());
//! }
//! ```

pub mod config;
pub mod engine;
pub mod lexer;
pub mod modgraph;
pub mod report;
pub mod rules;
pub mod waiver;

pub use config::{Config, Selector};
pub use engine::Analyzer;
pub use modgraph::{walk_workspace, ModuleGraph, SourceFile, TargetKind};
pub use report::{Finding, Report};
pub use rules::{all_rules, Rule, RuleMeta};
