//! Findings and report serialization (human text and JSON).
//!
//! The JSON writer is hand-rolled — the analyzer is dependency-free by
//! design so it can run before anything else builds.

use crate::waiver::WaivedFinding;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule code (`PL001`…`PL007`).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    pub message: String,
}

/// Full analyzer output for a workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the analysis ran on (display only).
    pub root: String,
    pub files_analyzed: usize,
    /// Findings that fail the run, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a waiver, kept for audit.
    pub waived: Vec<WaivedFinding>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        self.waived.sort_by(|a, b| {
            (&a.finding.file, a.finding.line, &a.finding.rule).cmp(&(
                &b.finding.file,
                b.finding.line,
                &b.finding.rule,
            ))
        });
    }

    /// Human-readable report.
    pub fn to_human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!(
                "{}:{}: {} {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        s.push_str(&format!(
            "pandora-lint: {} file(s) analyzed, {} finding(s), {} waived\n",
            self.files_analyzed,
            self.findings.len(),
            self.waived.len()
        ));
        s
    }

    /// Machine-readable report (stable field names; CI uploads this).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_analyzed\": {},\n", self.files_analyzed));
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        s.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"waived\": [");
        for (i, w) in self.waived.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"waiver_line\": {}, \
                 \"reason\": {}}}",
                json_str(&w.finding.rule),
                json_str(&w.finding.file),
                w.finding.line,
                w.waiver_line,
                json_str(&w.reason)
            ));
        }
        s.push_str(if self.waived.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str(&format!(
            "  \"summary\": {{\"unwaived\": {}, \"waived\": {}}}\n}}\n",
            self.findings.len(),
            self.waived.len()
        ));
        s
    }
}

/// Minimal JSON string escape.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"unwaived\": 0"));
    }
}
