//! Repo policy knobs for the analyzer.
//!
//! The *scopes* here are selectors over the computed module graph, never
//! file lists: a selector like `pandora_hdbscan::daemon` covers every
//! present and future submodule of the daemon, so the protected sets grow
//! with the code instead of rotting beside it.

use crate::modgraph::SourceFile;
use crate::rules::module_matches;

/// A file-set selector over the module graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selector {
    /// Matches a lib module path and all of its submodules,
    /// e.g. `pandora_hdbscan::daemon` also matches `…::daemon::json`.
    Module(String),
    /// Matches a binary target root by bin name, e.g. `pandorad`.
    Bin(String),
}

impl Selector {
    pub fn matches(&self, file: &SourceFile) -> bool {
        match self {
            Selector::Module(m) => module_matches(&file.module_path, m),
            Selector::Bin(name) => module_matches(&file.module_path, &format!("bin:{name}")),
        }
    }

    pub fn describe(&self) -> String {
        match self {
            Selector::Module(m) => format!("module {m} (and submodules)"),
            Selector::Bin(b) => format!("binary {b}"),
        }
    }
}

/// Analyzer configuration. [`Config::default`] encodes this repository's
/// policy; tests construct narrower configs to exercise scoping.
#[derive(Debug, Clone)]
pub struct Config {
    /// The serving tier (PL001): modules bound by the "no public entry
    /// point panics on user input" contract in docs/SERVING.md.
    pub serving_selectors: Vec<Selector>,
    /// Compute-kernel crates (PL005): everything under the serial ≡
    /// threaded bit-identity contract.
    pub kernel_crates: Vec<String>,
    /// Modules whose `Ordering::Relaxed` uses are counters-only and
    /// audited wholesale in docs/ANALYSIS.md (PL004 allowlist). Selectors
    /// are module-path prefixes.
    pub relaxed_allowed_modules: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            serving_selectors: vec![
                Selector::Module("pandora_hdbscan::serve".into()),
                Selector::Module("pandora_hdbscan::daemon".into()),
                Selector::Module("pandora_mst::error".into()),
                Selector::Module("pandora_mst::index".into()),
                Selector::Bin("pandorad".into()),
            ],
            kernel_crates: vec![
                "pandora-exec".into(),
                "pandora-mst".into(),
                "pandora-core".into(),
            ],
            // `counters` is the designated stats-counter module: every
            // Relaxed atomic in it is an exact-by-RMW counter read only
            // for reporting (the audit contract is spelled out in the
            // module's own docs and in docs/ANALYSIS.md §PL004). All other
            // Relaxed uses need a per-site waiver with an ordering
            // argument.
            relaxed_allowed_modules: vec!["pandora_exec::counters".into()],
        }
    }
}
