//! A hand-rolled lexer for the subset of Rust that static-analysis rules
//! need to see *correctly*: real code tokens on one side, comment text on
//! the other, with string/char/lifetime literals consumed whole so a rule
//! can never fire on `"panic!"` inside a string the way `grep` does.
//!
//! The lexer is deliberately lossy about things rules never look at
//! (numeric literal grammar, operator clustering) and deliberately exact
//! about the things that make text-level tools lie:
//!
//! * line comments (`//`, `///`, `//!`) run to end of line;
//! * block comments (`/* .. */`, `/** .. */`) **nest**, per the Rust
//!   reference;
//! * string `"…"`, byte-string `b"…"`, and C-string `c"…"` literals honour
//!   escapes (`\"` does not terminate);
//! * raw strings `r"…"`, `r#"…"#`, `br##"…"##` honour the hash count and
//!   contain no escapes;
//! * `'a'`/`'\n'` char literals are distinguished from `'a`/`'static`
//!   lifetimes (so the lexer never eats half a file after a lifetime);
//! * raw identifiers `r#match` are identifiers, not raw strings.

/// What a single lexed token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, `r#match`, …).
    Ident,
    /// Any punctuation byte (`.`, `!`, `(`, `{`, `:` …), one per token.
    Punct(char),
    /// A lifetime such as `'a` or `'static` (includes the quote).
    Lifetime,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`.
    Literal,
    /// Numeric literal (consumed loosely: digits, `_`, suffixes, exponents).
    Number,
}

/// A code token with its source position (1-indexed line).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text. For [`TokKind::Literal`] this is the full literal
    /// including delimiters; rules generally ignore literal text.
    pub text: String,
    /// 1-indexed line the token starts on.
    pub line: u32,
}

/// Kind of comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    Line,
    Block,
}

/// A comment with its span and the text *inside* the delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub kind: CommentKind,
    /// Comment body without `//`/`/*`/`*/` delimiters (single leading
    /// doc-marker `/`/`!`/`*` is preserved; waiver parsing strips it).
    pub text: String,
    /// 1-indexed first line of the comment.
    pub line_start: u32,
    /// 1-indexed last line of the comment.
    pub line_end: u32,
    /// True when no code token precedes the comment on `line_start`
    /// (an "own-line" comment rather than a trailing one).
    pub own_line: bool,
}

/// Lexer output: the token stream and the comment stream, both in source
/// order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if any code token starts on `line`.
    pub fn line_has_token(&self, line: u32) -> bool {
        // Tokens are in source order; a binary search would work, but the
        // callers hit this rarely enough that a scan keeps the code simple.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// First line strictly after `line` that carries a code token, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

/// Lex `src` into tokens and comments. Never panics on malformed input:
/// unterminated literals/comments simply run to end of file, which is the
/// forgiving behaviour a lint wants (rustc will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Whether a code token has been emitted on the current line.
    token_on_line: bool,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            token_on_line: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking line numbers.
    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.token_on_line = false;
        }
        b
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.token_on_line = true;
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'r' | b'b' | b'c' if self.raw_or_byte_prefix() => {}
                b'"' => self.string_literal(b'"'),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ if b >= 0x80 => {
                    // Non-ASCII outside strings/comments: Rust allows
                    // unicode identifiers; treat a run as an ident.
                    self.ident()
                }
                _ => {
                    let line = self.line;
                    let c = self.bump() as char;
                    self.push_tok(TokKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let own_line = !self.token_on_line;
        self.bump();
        self.bump(); // consume `//`
        let start = self.pos;
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            kind: CommentKind::Line,
            text,
            line_start: line,
            line_end: line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let line_start = self.line;
        let own_line = !self.token_on_line;
        self.bump();
        self.bump(); // consume `/*`
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                end = self.pos;
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        if depth != 0 {
            end = self.pos; // unterminated: runs to EOF
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.out.comments.push(Comment {
            kind: CommentKind::Block,
            text,
            line_start,
            line_end: self.line,
            own_line,
        });
    }

    /// Handle `r`/`b`/`c` prefixes that start raw strings, byte strings, or
    /// raw identifiers. Returns true if it consumed something; false means
    /// "just an identifier starting with r/b/c" and the caller falls
    /// through to `ident()` via the dispatch loop.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let b0 = self.peek(0);
        // b"..."  c"..."  — escaped string with a one-byte prefix.
        if (b0 == b'b' || b0 == b'c') && self.peek(1) == b'"' {
            let line = self.line;
            self.bump();
            self.string_literal_at(b'"', line, 1);
            return true;
        }
        // b'x' byte literal.
        if b0 == b'b' && self.peek(1) == b'\'' {
            let line = self.line;
            self.bump(); // b
            self.bump(); // '
            self.char_body(line);
            return true;
        }
        // r"..."  r#"..."#  br#"..."#  cr"..." — raw strings, no escapes.
        // r#ident — raw identifier.
        let (raw_at, _prefix_len) = if b0 == b'r' {
            (0usize, 1usize)
        } else if (b0 == b'b' || b0 == b'c') && self.peek(1) == b'r' {
            (1usize, 2usize)
        } else {
            return false;
        };
        let mut hashes = 0usize;
        while self.peek(raw_at + 1 + hashes) == b'#' {
            hashes += 1;
        }
        let after = self.peek(raw_at + 1 + hashes);
        if after == b'"' {
            self.raw_string(raw_at + 1, hashes);
            return true;
        }
        if raw_at == 0 && hashes >= 1 && is_ident_start(after) {
            // Raw identifier r#match. (Two hashes is not valid Rust; the
            // forgiving choice is to lex `r#` + ident anyway.)
            let line = self.line;
            self.bump(); // r
            self.bump(); // #
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push_tok(TokKind::Ident, text, line);
            return true;
        }
        false
    }

    /// Raw string starting at `self.pos + prefix_len` (the opening quote),
    /// with `hashes` guard hashes. No escape processing.
    fn raw_string(&mut self, prefix_len: usize, hashes: usize) {
        let line = self.line;
        let start = self.pos;
        for _ in 0..prefix_len + hashes + 1 {
            self.bump(); // prefix, hashes, opening quote
        }
        loop {
            if self.pos >= self.bytes.len() {
                break; // unterminated
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..1 + hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_tok(TokKind::Literal, text, line);
    }

    fn string_literal(&mut self, quote: u8) {
        let line = self.line;
        self.string_literal_at(quote, line, 0);
    }

    /// Escaped string literal; `consumed` bytes of prefix were already
    /// bumped (e.g. the `b` of `b"…"`). `self.pos` is at the quote.
    fn string_literal_at(&mut self, quote: u8, line: u32, consumed: usize) {
        let start = self.pos - consumed;
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            let b = self.bump();
            if b == b'\\' && self.pos < self.bytes.len() {
                self.bump(); // escaped byte — may be `"` or `\`
            } else if b == quote {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_tok(TokKind::Literal, text, line);
    }

    /// A `'` begins either a char literal or a lifetime. Disambiguation
    /// (mirrors rustc): it is a char literal iff the next char is escaped,
    /// or the char after the next one is a closing `'`. Otherwise, if an
    /// identifier follows, it is a lifetime.
    fn quote(&mut self) {
        let line = self.line;
        if self.peek(1) == b'\\' {
            self.bump(); // '
            self.char_body(line);
            return;
        }
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            // Lifetime: 'a, 'static, '_ …
            let start = self.pos;
            self.bump(); // '
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push_tok(TokKind::Lifetime, text, line);
            return;
        }
        self.bump(); // '
        self.char_body(line);
    }

    /// Body of a char/byte literal after the opening quote was consumed.
    fn char_body(&mut self, line: u32) {
        let start = self.pos.saturating_sub(1);
        while self.pos < self.bytes.len() {
            let b = self.bump();
            if b == b'\\' && self.pos < self.bytes.len() {
                self.bump();
            } else if b == b'\'' {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_tok(TokKind::Literal, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Loose: digits, `_`, hex/bin/oct letters, suffixes, `.` between
        // digits, exponents with signs. Exactness is irrelevant to rules.
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek(1).is_ascii_digit())
                || ((b == b'+' || b == b'-')
                    && matches!(self.bytes.get(self.pos - 1), Some(b'e') | Some(b'E'))
                    && self.peek(1).is_ascii_digit());
            if !continues {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_tok(TokKind::Number, text, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.peek(0);
            if is_ident_continue(b) || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_tok(TokKind::Ident, text, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_swallow_rule_text() {
        let l = lex(r#"let s = "panic!(\"boom\").unwrap()"; s.len();"#);
        let ids: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, ["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_honour_hash_count() {
        let l = lex(r###"let s = r#"unwrap() " still inside "#; done();"###);
        assert!(
            idents(r###"let s = r#"unwrap() " still inside "#; done();"###)
                .contains(&"done".to_string())
        );
        assert!(!l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn byte_and_cstring_prefixes() {
        assert_eq!(idents(r#"f(b"dbg!(x)", c"todo!()", br"panic!");"#), ["f"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ code();");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert!(l.tokens.iter().any(|t| t.text == "code"));
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let l = lex("/* never closed\ncode();");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.is_empty());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> &'static str { 'x'; '\\n'; x }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifier_is_ident_not_raw_string() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn labels_then_char_after() {
        // 'outer: loop — label lexes as a lifetime, not an unterminated char.
        let l = lex("'outer: loop { break 'outer; }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'outer"));
    }

    #[test]
    fn trailing_comment_is_not_own_line() {
        let l = lex("code(); // trailing\n// own line\n");
        assert!(!l.comments[0].own_line);
        assert!(l.comments[1].own_line);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let l = lex("let a = \"two\nlines\";\nb();");
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// docs with unwrap()\n//! inner docs\nfn f() {}");
        assert_eq!(l.comments.len(), 2);
        assert!(!l.tokens.iter().any(|t| t.text == "unwrap"));
    }
}
