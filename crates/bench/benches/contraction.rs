//! Tree-contraction internals: α classification, one contraction level, the
//! full multilevel hierarchy, and chain-key assignment — the pieces behind
//! the paper's Fig. 12/13 phase accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;

use pandora_core::expansion::{assign_chain_keys, sort_chain_keys, stitch_chains};
use pandora_core::levels::{build_hierarchy, contract_level, max_incident, split_alpha, LevelTree};
use pandora_core::{Edge, SortedMst};
use pandora_exec::ExecCtx;

fn random_mst(n: usize, seed: u64) -> SortedMst {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<Edge> = (1..n)
        .map(|v| Edge::new(rng.gen_range(0..v) as u32, v as u32, rng.gen::<f32>()))
        .collect();
    SortedMst::from_edges(&ExecCtx::threads(), n, &edges)
}

fn bench_level_pieces(c: &mut Criterion) {
    let n = 500_000usize;
    let ctx = ExecCtx::threads();
    let mst = random_mst(n, 3);
    let tree = LevelTree::from_mst(&mst);
    let mi = max_incident(&ctx, &tree);
    let split = split_alpha(&ctx, &tree, &mi);

    let mut group = c.benchmark_group("contraction_pieces");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("max_incident", |b| b.iter(|| max_incident(&ctx, &tree)));
    group.bench_function("split_alpha", |b| b.iter(|| split_alpha(&ctx, &tree, &mi)));
    group.bench_function("contract_one_level", |b| {
        b.iter(|| contract_level(&ctx, &tree, &split))
    });
    group.finish();
}

fn bench_hierarchy_and_expansion(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("hierarchy");
    group.sample_size(10);
    for n in [100_000usize, 500_000] {
        let mst = random_mst(n, 9);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("build_hierarchy", n), &mst, |b, mst| {
            b.iter(|| build_hierarchy(&ctx, mst))
        });
        let h = build_hierarchy(&ctx, &mst);
        group.bench_with_input(BenchmarkId::new("assign_chain_keys", n), &h, |b, h| {
            b.iter(|| assign_chain_keys(&ctx, h))
        });
        let keys_template = assign_chain_keys(&ctx, &h);
        group.bench_with_input(
            BenchmarkId::new("final_sort_and_stitch", n),
            &keys_template,
            |b, keys_template| {
                b.iter_batched(
                    || keys_template.clone(),
                    |mut keys| {
                        sort_chain_keys(&ctx, &mut keys);
                        stitch_chains(&ctx, mst.n_edges(), &keys)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_level_pieces, bench_hierarchy_and_expansion
);
criterion_main!(benches);
