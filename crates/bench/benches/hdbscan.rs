//! End-to-end HDBSCAN\* pipeline benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pandora_data::by_name;
use pandora_exec::ExecCtx;
use pandora_hdbscan::{Hdbscan, HdbscanParams};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdbscan_pipeline");
    group.sample_size(10);
    for name in ["Hacc37M", "Ngsimlocation3"] {
        let points = by_name(name).unwrap().generate(20_000, 6);
        group.throughput(Throughput::Elements(points.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &points, |b, points| {
            let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::threads());
            b.iter(|| driver.run(points))
        });
    }
    group.finish();
}

fn bench_mpts_sensitivity(c: &mut Criterion) {
    // Fig 15's knob: rising mpts should grow the dendrogram stage only
    // mildly for PANDORA.
    let points = by_name("Uniform100M3D").unwrap().generate(20_000, 8);
    let mut group = c.benchmark_group("hdbscan_mpts");
    group.sample_size(10);
    for mpts in [2usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(mpts), &mpts, |b, &mpts| {
            let driver = Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts: mpts,
                    ..Default::default()
                },
                ExecCtx::threads(),
            );
            b.iter(|| driver.run(&points))
        });
    }
    group.finish();
}

fn bench_engine_sweep(c: &mut Criterion) {
    // The serving shape: one engine per dataset, a whole mpts sweep per
    // iteration (amortized build + k-NN + pooled buffers) vs the same four
    // requests served by cold one-shot pipelines.
    let points = by_name("Uniform100M3D").unwrap().generate(20_000, 8);
    let sweep = [2usize, 4, 8, 16];
    let mut group = c.benchmark_group("hdbscan_engine");
    group.sample_size(10);
    group.bench_function("sweep_engine", |b| {
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ExecCtx::threads());
        b.iter(|| {
            let mut engine = driver.engine(&points);
            engine.sweep_min_pts(&sweep)
        })
    });
    group.bench_function("sweep_cold_runs", |b| {
        b.iter(|| {
            sweep
                .iter()
                .map(|&min_pts| {
                    Hdbscan::with_ctx(
                        HdbscanParams {
                            min_pts,
                            ..Default::default()
                        },
                        ExecCtx::threads(),
                    )
                    .run(&points)
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5));
    targets = bench_pipeline, bench_mpts_sensitivity, bench_engine_sweep
);
criterion_main!(benches);
