//! Design-choice ablations called out in DESIGN.md §6:
//!
//! * multilevel expansion (paper §3.3.2) vs single-level walk (§3.3.1) —
//!   the walk degrades on skew, the multilevel checks do not;
//! * the mixed baseline (§2.3.3) at different top fractions;
//! * PANDORA vs all baselines on one realistic MST.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

use pandora_core::baseline::{dendrogram_mixed, dendrogram_union_find};
use pandora_core::single_level::dendrogram_single_level;
use pandora_core::{pandora, Edge, SortedMst};
use pandora_exec::ExecCtx;

fn random_mst(n: usize, seed: u64) -> SortedMst {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<Edge> = (1..n)
        .map(|v| Edge::new(rng.gen_range(0..v) as u32, v as u32, rng.gen::<f32>()))
        .collect();
    SortedMst::from_edges(&ExecCtx::threads(), n, &edges)
}

/// Deep α-chain with heavy leaves — the single-level walk's worst case.
fn walk_adversarial_mst(hubs: usize, heavies: usize) -> SortedMst {
    let mut edges = Vec::new();
    for h in 1..hubs {
        edges.push(Edge::new((h - 1) as u32, h as u32, 2e6 - h as f32));
    }
    let mut next = hubs as u32;
    for h in 0..hubs {
        edges.push(Edge::new(h as u32, next, 1.0 + h as f32 * 1e-3));
        next += 1;
    }
    for k in 0..heavies {
        edges.push(Edge::new((hubs - 1) as u32, next, 1e7 + k as f32));
        next += 1;
    }
    SortedMst::from_edges(&ExecCtx::threads(), next as usize, &edges)
}

fn bench_expansion_modes(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("expansion_mode");
    group.sample_size(10);
    for (label, mst) in [
        ("random_100k", random_mst(100_000, 3)),
        (
            "adversarial_deep_chain",
            walk_adversarial_mst(30_000, 3_000),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("multilevel", label), &mst, |b, mst| {
            b.iter(|| pandora::dendrogram_from_sorted(&ctx, mst).0)
        });
        group.bench_with_input(BenchmarkId::new("single_level", label), &mst, |b, mst| {
            b.iter(|| dendrogram_single_level(&ctx, mst))
        });
    }
    group.finish();
}

fn bench_mixed_fractions(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mst = random_mst(200_000, 5);
    let mut group = c.benchmark_group("mixed_top_fraction");
    group.sample_size(10);
    for fraction in [0.1f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(fraction),
            &fraction,
            |b, &fraction| b.iter(|| dendrogram_mixed(&ctx, &mst, fraction)),
        );
    }
    group.bench_function("union_find_sequential", |b| {
        b.iter(|| dendrogram_union_find(&mst))
    });
    group.bench_function("pandora", |b| {
        b.iter(|| pandora::dendrogram_from_sorted(&ctx, &mst).0)
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_expansion_modes, bench_mixed_fractions
);
criterion_main!(benches);
