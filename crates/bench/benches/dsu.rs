//! Union–find ablation: lock-free pointer-jumping DSU (the paper's choice,
//! [22]) vs the sequential structure, under tree-contraction-like load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;

use pandora_exec::dsu::{AtomicDsu, SeqDsu};
use pandora_exec::ExecCtx;

fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32))
        .collect()
}

fn bench_dsu(c: &mut Criterion) {
    let n = 1_000_000usize;
    let m = 800_000usize;
    let edges = random_edges(n, m, 11);
    let ctx = ExecCtx::threads();

    let mut group = c.benchmark_group("dsu_union");
    group.sample_size(10);
    group.throughput(Throughput::Elements(m as u64));
    group.bench_function(BenchmarkId::new("atomic_parallel", m), |b| {
        b.iter(|| {
            let dsu = AtomicDsu::new(n);
            let edges_ref = &edges;
            let dsu_ref = &dsu;
            ctx.for_each(m, 512, |i| {
                let (a, b) = edges_ref[i];
                dsu_ref.union(a, b);
            });
            dsu.find(0)
        })
    });
    group.bench_function(BenchmarkId::new("sequential", m), |b| {
        b.iter(|| {
            let mut dsu = SeqDsu::new(n);
            for &(a, b) in &edges {
                dsu.union(a, b);
            }
            dsu.find(0)
        })
    });
    group.finish();
}

fn bench_find_after_union(c: &mut Criterion) {
    // Contraction's second phase: one find per vertex after all unions.
    let n = 1_000_000usize;
    let edges = random_edges(n, n - 1, 5);
    let dsu = AtomicDsu::new(n);
    for &(a, b) in &edges {
        dsu.union(a, b);
    }
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("dsu_find_all");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("parallel_find", |b| {
        b.iter(|| {
            let dsu_ref = &dsu;
            ctx.reduce(
                n,
                4096,
                0u64,
                |acc, range| acc + range.map(|v| dsu_ref.find(v as u32) as u64).sum::<u64>(),
                |a, b| a + b,
            )
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_dsu, bench_find_after_union
);
criterion_main!(benches);
