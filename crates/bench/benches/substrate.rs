//! Substrate primitives: parallel for / reduce / scan throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pandora_exec::scan::exclusive_scan_in_place;
use pandora_exec::ExecCtx;

fn bench_for_each(c: &mut Criterion) {
    let mut group = c.benchmark_group("for_each");
    group.sample_size(20);
    for n in [100_000usize, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, ctx) in [
            ("serial", ExecCtx::serial()),
            ("threads", ExecCtx::threads()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut out = vec![0u64; n];
                b.iter(|| {
                    let view = pandora_exec::UnsafeSlice::new(&mut out);
                    ctx.for_each_chunk(n, 4096, |range| {
                        for i in range {
                            // SAFETY: disjoint chunks.
                            unsafe { view.write(i, (i as u64).wrapping_mul(0x9E3779B9)) };
                        }
                    });
                });
            });
        }
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce");
    group.sample_size(20);
    let n = 1_000_000usize;
    let data: Vec<u64> = (0..n as u64).collect();
    group.throughput(Throughput::Elements(n as u64));
    for (label, ctx) in [
        ("serial", ExecCtx::serial()),
        ("threads", ExecCtx::threads()),
    ] {
        let data_ref = &data;
        group.bench_function(label, |b| {
            b.iter(|| {
                ctx.reduce(
                    n,
                    4096,
                    0u64,
                    |acc, range| acc + range.map(|i| data_ref[i]).sum::<u64>(),
                    |a, b| a + b,
                )
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclusive_scan");
    group.sample_size(20);
    for n in [100_000usize, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        for (label, ctx) in [
            ("serial", ExecCtx::serial()),
            ("threads", ExecCtx::threads()),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let template: Vec<u32> = (0..n as u32).map(|i| i % 7).collect();
                let mut buf = template.clone();
                b.iter(|| {
                    buf.copy_from_slice(&template);
                    exclusive_scan_in_place(&ctx, &mut buf)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_for_each, bench_reduce, bench_scan
);
criterion_main!(benches);
