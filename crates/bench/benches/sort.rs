//! Sorting ablation: parallel radix vs parallel merge vs std — sorting is
//! 67–85% of PANDORA's CPU time (paper Fig. 13), so the substrate's sort
//! choice dominates end-to-end performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;

use pandora_exec::radix::par_radix_sort_u64;
use pandora_exec::sort::par_sort_by_key;
use pandora_exec::ExecCtx;

fn bench_sorts(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("sort_u64");
    group.sample_size(10);
    for n in [100_000usize, 1_000_000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let template: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("par_radix", n), &n, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut keys| par_radix_sort_u64(&ctx, &mut keys),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("par_merge", n), &n, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut keys| par_sort_by_key(&ctx, &mut keys, |&k| k),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &n, |b, _| {
            b.iter_batched(
                || template.clone(),
                |mut keys| keys.sort_unstable(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_chain_key_distribution(c: &mut Criterion) {
    // PANDORA's final sort sees keys with few distinct high bytes (chain
    // ids); the radix skip-pass optimization should show here.
    let ctx = ExecCtx::threads();
    let n = 1_000_000usize;
    let mut rng = StdRng::seed_from_u64(3);
    let template: Vec<u64> = (0..n)
        .map(|i| ((rng.gen_range(0..512u64)) << 32) | i as u64)
        .collect();
    let mut group = c.benchmark_group("sort_chain_keys");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("par_radix_sparse_high_bits", |b| {
        b.iter_batched(
            || template.clone(),
            |mut keys| par_radix_sort_u64(&ctx, &mut keys),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sorts, bench_chain_key_distribution
);
criterion_main!(benches);
