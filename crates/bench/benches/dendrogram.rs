//! Dendrogram construction: PANDORA vs UnionFind vs top-down, across tree
//! shapes from fully balanced to fully skewed — the paper's central claim is
//! that PANDORA's work is *independent of skew* while top-down degrades.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

use pandora_core::baseline::{dendrogram_top_down, dendrogram_union_find};
use pandora_core::{pandora, Edge, SortedMst};
use pandora_exec::ExecCtx;

fn random_tree(n: usize, seed: u64) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    (1..n)
        .map(|v| Edge::new(rng.gen_range(0..v) as u32, v as u32, rng.gen::<f32>()))
        .collect()
}

fn chain_tree(n: usize) -> Vec<Edge> {
    (0..n - 1)
        .map(|i| Edge::new(i as u32, i as u32 + 1, (n - i) as f32))
        .collect()
}

fn star_tree(n: usize) -> Vec<Edge> {
    (1..n)
        .map(|i| Edge::new(0, i as u32, (n - i) as f32))
        .collect()
}

fn balanced_tree(n: usize) -> Vec<Edge> {
    (1..n)
        .map(|i| Edge::new((i / 2) as u32, i as u32, 1.0 / i as f32))
        .collect()
}

fn bench_shapes(c: &mut Criterion) {
    let n = 100_000usize;
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("dendrogram_shape");
    group.sample_size(10);
    for (shape, edges) in [
        ("random", random_tree(n, 1)),
        ("chain", chain_tree(n)),
        ("star", star_tree(n)),
        ("balanced", balanced_tree(n)),
    ] {
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        group.bench_with_input(BenchmarkId::new("pandora", shape), &mst, |b, mst| {
            b.iter(|| pandora::dendrogram_from_sorted(&ctx, mst).0)
        });
        group.bench_with_input(BenchmarkId::new("union_find", shape), &mst, |b, mst| {
            b.iter(|| dendrogram_union_find(mst))
        });
    }
    group.finish();
}

fn bench_topdown_skew_sensitivity(c: &mut Criterion) {
    // Top-down is O(n·h): at the same n it collapses on skewed shapes while
    // PANDORA stays flat. Small n so the bench terminates.
    let n = 4_000usize;
    let ctx = ExecCtx::serial();
    let mut group = c.benchmark_group("topdown_vs_skew");
    group.sample_size(10);
    for (shape, edges) in [
        ("balanced", balanced_tree(n)),
        ("random", random_tree(n, 2)),
        ("chain", chain_tree(n)),
    ] {
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        group.bench_with_input(BenchmarkId::new("top_down", shape), &mst, |b, mst| {
            b.iter(|| dendrogram_top_down(mst))
        });
        group.bench_with_input(BenchmarkId::new("pandora", shape), &mst, |b, mst| {
            b.iter(|| pandora::dendrogram_from_sorted(&ctx, mst).0)
        });
    }
    group.finish();
}

fn bench_sizes(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("dendrogram_scaling");
    group.sample_size(10);
    for n in [10_000usize, 100_000, 400_000] {
        let edges = random_tree(n, 7);
        let mst = SortedMst::from_edges(&ctx, n, &edges);
        group.throughput(criterion::Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pandora", n), &mst, |b, mst| {
            b.iter(|| pandora::dendrogram_from_sorted(&ctx, mst).0)
        });
        group.bench_with_input(BenchmarkId::new("union_find", n), &mst, |b, mst| {
            b.iter(|| dendrogram_union_find(mst))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_shapes, bench_topdown_skew_sensitivity, bench_sizes
);
criterion_main!(benches);
