//! EMST substrate: kd-tree construction, k-NN core distances, Borůvka.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pandora_data::by_name;
use pandora_exec::ExecCtx;
use pandora_mst::{
    boruvka_mst, boruvka_mst_seeded, core_distances2, emst, EmstParams, Euclidean, KdTree,
    MutualReachability,
};

fn bench_kdtree_build(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("kdtree_build");
    group.sample_size(10);
    for n in [50_000usize, 200_000] {
        let points = by_name("Uniform100M3D").unwrap().generate(n, 1);
        group.throughput(Throughput::Elements(points.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, points| {
            b.iter(|| KdTree::build(&ctx, points))
        });
    }
    group.finish();
}

fn bench_core_distances(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let points = by_name("Hacc37M").unwrap().generate(50_000, 2);
    let tree = KdTree::build(&ctx, &points);
    let mut group = c.benchmark_group("core_distances");
    group.sample_size(10);
    group.throughput(Throughput::Elements(points.len() as u64));
    for min_pts in [2usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(min_pts),
            &min_pts,
            |b, &min_pts| b.iter(|| core_distances2(&ctx, &points, &tree, min_pts)),
        );
    }
    group.finish();
}

fn bench_boruvka(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("boruvka_emst");
    group.sample_size(10);
    for (name, n) in [("Uniform100M2D", 12_000usize), ("Hacc37M", 12_000)] {
        let points = by_name(name).unwrap().generate(n, 4);
        group.throughput(Throughput::Elements(points.len() as u64));
        group.bench_with_input(BenchmarkId::new("euclidean", name), &points, |b, points| {
            let tree = KdTree::build(&ctx, points);
            b.iter(|| boruvka_mst(&ctx, points, &tree, &Euclidean))
        });
        group.bench_with_input(
            BenchmarkId::new("mutual_reachability", name),
            &points,
            |b, points| {
                let tree = KdTree::build(&ctx, points);
                let core2 = core_distances2(&ctx, points, &tree, 2);
                let mut node_core2 = Vec::new();
                tree.min_core2_into(&core2, &mut node_core2);
                let metric = MutualReachability { core2: &core2 };
                b.iter(|| boruvka_mst_seeded(&ctx, points, &tree, &metric, None, &node_core2))
            },
        );
    }
    group.finish();
}

fn bench_emst_pipeline(c: &mut Criterion) {
    // The orchestrated end-to-end EMST (build → core → Borůvka) — the
    // number the tentpole speedup claims are measured on (fig01's EMST
    // stage at PR scale).
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("emst_pipeline");
    group.sample_size(10);
    for (name, n) in [("Hacc37M", 20_000usize), ("Uniform100M2D", 20_000)] {
        let points = by_name(name).unwrap().generate(n, 42);
        group.throughput(Throughput::Elements(points.len() as u64));
        group.bench_with_input(BenchmarkId::new("min_pts2", name), &points, |b, points| {
            b.iter(|| emst(&ctx, points, &EmstParams::default()))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_kdtree_build, bench_core_distances, bench_boruvka, bench_emst_pipeline
);
criterion_main!(benches);
