//! Criterion companions to the figure binaries: timed PANDORA vs
//! UnionFind-MT dendrogram construction on real mutual-reachability MSTs of
//! the Fig. 11/12 datasets (the figure binaries print the full tables; these
//! give statistically sound per-dataset timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pandora_bench::suite::fig12_suite;
use pandora_core::baseline::dendrogram_union_find;
use pandora_core::{pandora, SortedMst};
use pandora_exec::ExecCtx;
use pandora_mst::{emst, EmstParams};

fn mst_of(points: &pandora_mst::PointSet, min_pts: usize) -> SortedMst {
    let ctx = ExecCtx::threads();
    let edges = emst(&ctx, points, &EmstParams::with_min_pts(min_pts)).edges;
    SortedMst::from_edges(&ctx, points.len(), &edges)
}

fn bench_fig11_datasets(c: &mut Criterion) {
    let ctx = ExecCtx::threads();
    let mut group = c.benchmark_group("fig11_dendrogram");
    group.sample_size(10);
    for ds in fig12_suite() {
        let points = ds.generate(30_000, 12);
        let mst = mst_of(&points, 2);
        group.throughput(Throughput::Elements(points.len() as u64));
        group.bench_with_input(BenchmarkId::new("pandora", ds.label), &mst, |b, mst| {
            b.iter(|| pandora::dendrogram_from_sorted(&ctx, mst).0)
        });
        group.bench_with_input(BenchmarkId::new("union_find", ds.label), &mst, |b, mst| {
            b.iter(|| dendrogram_union_find(mst))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(4));
    targets = bench_fig11_datasets
);
criterion_main!(benches);
