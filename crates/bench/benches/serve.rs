//! Serving-path benchmarks: a warm [`Session`] over a frozen
//! [`DatasetIndex`] against the cold one-shot pipeline, plus the freeze
//! cost itself — the per-request economics of the two-tier API.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

use pandora_data::by_name;
use pandora_exec::ExecCtx;
use pandora_hdbscan::{ClusterRequest, DatasetIndex, Hdbscan, HdbscanParams};

fn bench_session_vs_cold(c: &mut Criterion) {
    let n = 8_000usize;
    let points = by_name("Hacc37M").expect("registry").generate(n, 42);
    let ctx = ExecCtx::serial();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("warm_session", "Hacc37M"), |b| {
        let index = Arc::new(
            DatasetIndex::freeze_with_ctx(ctx.clone(), points.clone(), 16).expect("freeze"),
        );
        let mut session = index.session();
        let requests = [2usize, 4, 8, 16].map(|m| ClusterRequest::new().min_pts(m));
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % requests.len();
            session.run(&requests[i]).expect("valid request")
        })
    });

    group.bench_function(BenchmarkId::new("cold_one_shot", "Hacc37M"), |b| {
        let mut i = 0usize;
        let mpts = [2usize, 4, 8, 16];
        b.iter(|| {
            i = (i + 1) % mpts.len();
            Hdbscan::with_ctx(
                HdbscanParams {
                    min_pts: mpts[i],
                    ..Default::default()
                },
                ctx.clone(),
            )
            .run(&points)
        })
    });

    group.bench_function(BenchmarkId::new("freeze", "Hacc37M"), |b| {
        b.iter(|| DatasetIndex::freeze_with_ctx(ctx.clone(), points.clone(), 16).expect("freeze"))
    });
    group.finish();
}

criterion_group!(benches, bench_session_vs_cold);
criterion_main!(benches);
