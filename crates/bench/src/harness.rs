//! Shared measurement machinery for the figure binaries.

use std::sync::Arc;
use std::time::Instant;

use pandora_core::baseline::dendrogram_union_find_mt;
use pandora_core::{
    pandora, DendrogramBackend, DendrogramWorkspace, Edge, PhaseTimings, SortedMst,
};
use pandora_exec::device::DeviceModel;
use pandora_exec::trace::Trace;
use pandora_exec::{ExecCtx, ScratchPool};
use pandora_hdbscan::{ClusterRequest, DatasetIndex, Hdbscan, HdbscanParams};
use pandora_mst::{
    emst, emst_from_index, emst_into, nnchain_merges, EmstIndex, EmstParams, EmstScratch,
    EmstTimings, EmstWorkspace, Linkage, PointSet,
};

/// Everything the figure binaries need from one dataset run: real wall-clock
/// numbers on this host plus kernel traces for device projection.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Point count.
    pub n: usize,
    /// Measured EMST wall time (tree build + core distances + Borůvka).
    pub mst_wall_s: f64,
    /// EMST stage decomposition (build / core / Borůvka).
    pub emst_timings: EmstTimings,
    /// Measured PANDORA phase times (sort / contraction / expansion).
    pub pandora_wall: PhaseTimings,
    /// Measured UnionFind-MT baseline: (parallel sort, sequential pass).
    pub ufmt_wall: (f64, f64),
    /// Kernel trace of the EMST stage.
    pub mst_trace: Trace,
    /// Kernel trace of the PANDORA dendrogram stage.
    pub pandora_trace: Trace,
    /// Kernel trace of the UnionFind-MT baseline.
    pub ufmt_trace: Trace,
    /// Dendrogram skew (height / log₂ n, Table 2's `Imb`).
    pub skew: f64,
    /// PANDORA contraction level count.
    pub n_levels: usize,
}

/// Runs EMST + both dendrogram algorithms on `points` with tracing.
pub fn run_pipeline(points: &PointSet, min_pts: usize) -> PipelineRun {
    let (ctx, tracer) = ExecCtx::threads().with_tracing();
    let n = points.len();

    // EMST stage (traced as phases "emst_build" / "emst_core" /
    // "emst_boruvka" by the orchestrator).
    let t = Instant::now();
    let result = emst(&ctx, points, &EmstParams::with_min_pts(min_pts));
    let edges: Vec<Edge> = result.edges;
    let mst_wall_s = t.elapsed().as_secs_f64();
    let mst_trace = tracer.snapshot();
    tracer.reset();

    // PANDORA (phases sort / contraction / expansion are set internally).
    let (dendro, stats) = pandora::dendrogram_with_stats(&ctx, n, &edges);
    let pandora_trace = tracer.snapshot();
    tracer.reset();

    // UnionFind-MT baseline.
    let (_d2, uf_sort_s, uf_pass_s) = dendrogram_union_find_mt(&ctx, n, &edges);
    let ufmt_trace = tracer.snapshot();
    tracer.reset();

    PipelineRun {
        n,
        mst_wall_s,
        emst_timings: result.timings,
        pandora_wall: stats.timings,
        ufmt_wall: (uf_sort_s, uf_pass_s),
        mst_trace,
        pandora_trace,
        ufmt_trace,
        skew: dendro.skewness(),
        n_levels: stats.n_levels,
    }
}

/// Runs the full pipeline once per `min_pts` through a **shared engine
/// substrate** ([`EmstWorkspace`] + [`DendrogramWorkspace`]): the kd-tree
/// is built once, one k-NN pass at the sweep maximum serves every member's
/// core distances, and all stage buffers are recycled — the serving-shaped
/// counterpart of calling [`run_pipeline`] per `min_pts`, with bit-identical
/// results.
///
/// Each returned run's `mst_trace` is the member's *incremental* EMST trace
/// with the shared build/k-NN trace prepended, so device projections stay
/// comparable with the one-shot harness; the shared wall seconds are
/// reported separately (and `emst_timings.tree_build_s` is 0 for every
/// member, since the prepared substrate is reused).
pub fn run_pipeline_swept(points: &PointSet, min_pts_list: &[usize]) -> (f64, Vec<PipelineRun>) {
    let (ctx, tracer) = ExecCtx::threads().with_tracing();
    let n = points.len();

    let mut emst_ws = EmstWorkspace::new();
    let mut dendro_ws = DendrogramWorkspace::new();
    let prepare_s = match min_pts_list.iter().max() {
        Some(&max) => emst_ws.prepare(&ctx, points, max),
        None => 0.0,
    };
    let shared_trace = tracer.snapshot();
    tracer.reset();

    let runs = min_pts_list
        .iter()
        .map(|&min_pts| {
            let t = Instant::now();
            let result = emst_into(&ctx, points, min_pts, &mut emst_ws);
            let edges: Vec<Edge> = result.edges;
            let mst_wall_s = t.elapsed().as_secs_f64();
            let incremental = tracer.snapshot();
            tracer.reset();
            let mut mst_trace = shared_trace.clone();
            mst_trace.events.extend_from_slice(&incremental.events);

            // PANDORA through the reusable dendrogram workspace (input
            // sort counted into the sort phase, as the one-shot path does).
            ctx.set_phase("sort");
            let sort_start = Instant::now();
            let mst = SortedMst::from_edges(&ctx, n, &edges);
            let input_sort_s = sort_start.elapsed().as_secs_f64();
            let (dendro, mut stats) =
                pandora::dendrogram_from_sorted_with(&ctx, &mst, &mut dendro_ws);
            stats.timings.sort_s += input_sort_s;
            let pandora_trace = tracer.snapshot();
            tracer.reset();

            // UnionFind-MT baseline (unchanged: the figure compares
            // against the one-shot CPU baseline).
            let (_d2, uf_sort_s, uf_pass_s) = dendrogram_union_find_mt(&ctx, n, &edges);
            let ufmt_trace = tracer.snapshot();
            tracer.reset();

            PipelineRun {
                n,
                mst_wall_s,
                emst_timings: result.timings,
                pandora_wall: stats.timings,
                ufmt_wall: (uf_sort_s, uf_pass_s),
                mst_trace,
                pandora_trace,
                ufmt_trace,
                skew: dendro.skewness(),
                n_levels: stats.n_levels,
            }
        })
        .collect();
    (prepare_s, runs)
}

/// Measured engine-vs-cold amortization: wall seconds of one
/// [`pandora_hdbscan::HdbscanEngine`] sweep against the sum of one-shot
/// [`Hdbscan::run`] calls over the same `min_pts` list (identical results;
/// best of `reps` for each side).
#[derive(Debug, Clone)]
pub struct EngineCanary {
    /// Engine sweep wall seconds (tree + k-NN shared, buffers pooled).
    pub sweep_s: f64,
    /// Sum of cold one-shot wall seconds.
    pub cold_s: f64,
    /// `cold_s / sweep_s`.
    pub speedup: f64,
}

/// Runs the engine sweep and the cold one-shot baseline (best of `reps`
/// each) and asserts the labels agree — the CI engine canary's measurement.
pub fn engine_vs_cold(points: &PointSet, min_pts_list: &[usize], reps: usize) -> EngineCanary {
    let ctx = ExecCtx::threads();
    let mut sweep_s = f64::INFINITY;
    let mut sweep_labels: Vec<Vec<i32>> = Vec::new();
    for _ in 0..reps.max(1) {
        let driver = Hdbscan::with_ctx(HdbscanParams::default(), ctx.clone());
        let mut engine = driver.engine(points);
        let t = Instant::now();
        let results = engine.sweep_min_pts(min_pts_list);
        let spent = t.elapsed().as_secs_f64();
        if spent < sweep_s {
            sweep_s = spent;
        }
        sweep_labels = results.into_iter().map(|r| r.labels).collect();
    }
    let mut cold_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let cold: Vec<Vec<i32>> = min_pts_list
            .iter()
            .map(|&min_pts| {
                Hdbscan::with_ctx(
                    HdbscanParams {
                        min_pts,
                        ..Default::default()
                    },
                    ctx.clone(),
                )
                .run(points)
                .labels
            })
            .collect();
        let spent = t.elapsed().as_secs_f64();
        if spent < cold_s {
            cold_s = spent;
        }
        assert_eq!(cold, sweep_labels, "engine and one-shot labels diverged");
    }
    EngineCanary {
        sweep_s,
        cold_s,
        speedup: cold_s / sweep_s.max(1e-12),
    }
}

/// Measured concurrent-serving throughput over one shared
/// [`DatasetIndex`]: requests/second at 1 and at `t_many` serving
/// threads, same request mix, same total request count.
#[derive(Debug, Clone)]
pub struct ServeCanary {
    /// Requests/second with a single serving thread.
    pub rps_t1: f64,
    /// Requests/second with `t_many` serving threads over the same index.
    pub rps_t_many: f64,
    /// The "many" thread count measured.
    pub t_many: usize,
    /// Total requests answered per measurement.
    pub requests: usize,
}

/// Answers `total_requests` clustering requests (a fixed `minPts` mix)
/// against one `Arc<DatasetIndex>` using `threads` serving threads, each
/// with its own serial-context session (request-level parallelism), and
/// returns the wall seconds. Labels are sanity-checked against `expect`
/// (one labelling per mix entry, computed by the caller) so a throughput
/// win can never hide a wrong answer.
fn serve_wall_s(
    index: &Arc<DatasetIndex>,
    mix: &[ClusterRequest],
    expect: &[Vec<i32>],
    threads: usize,
    total_requests: usize,
) -> f64 {
    let per_thread = total_requests.div_ceil(threads.max(1));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let index = Arc::clone(index);
            scope.spawn(move || {
                // Serial stage dispatch: with T sessions in flight the
                // request-level parallelism already covers the lanes.
                let mut session = index.session_with_ctx(ExecCtx::serial());
                for i in 0..per_thread {
                    let which = (thread + i) % mix.len();
                    let result = session
                        .run(&mix[which])
                        .expect("bench requests are within the frozen ceiling");
                    assert_eq!(
                        result.labels, expect[which],
                        "thread {thread} request {i}: serving diverged from one-shot"
                    );
                }
            });
        }
    });
    t.elapsed().as_secs_f64()
}

/// Measures [`ServeCanary`]: freezes one index over `points`, computes the
/// ground-truth labelling per mix member once, then times the same total
/// request volume at 1 serving thread and at `t_many` (best of `reps`
/// each). Every served answer is asserted bit-identical to the one-shot
/// labelling, so the canary measures *correct* concurrent serving only.
pub fn serve_throughput(
    points: &PointSet,
    min_pts_mix: &[usize],
    t_many: usize,
    requests_per_thread: usize,
    reps: usize,
) -> ServeCanary {
    let ceiling = min_pts_mix.iter().copied().max().unwrap_or(2);
    let index = Arc::new(
        DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points.clone(), ceiling)
            .expect("bench dataset freezes"),
    );
    let mix: Vec<ClusterRequest> = min_pts_mix
        .iter()
        .map(|&m| ClusterRequest::new().min_pts(m))
        .collect();
    let expect: Vec<Vec<i32>> = mix
        .iter()
        .map(|request| {
            Hdbscan::with_ctx(request.to_params(), ExecCtx::serial())
                .run(points)
                .labels
        })
        .collect();
    let total_requests = requests_per_thread * t_many;
    let best = |threads: usize| -> f64 {
        let mut wall = f64::INFINITY;
        for _ in 0..reps.max(1) {
            wall = wall.min(serve_wall_s(&index, &mix, &expect, threads, total_requests));
        }
        wall
    };
    let wall_t1 = best(1);
    let wall_t_many = best(t_many);
    ServeCanary {
        rps_t1: total_requests as f64 / wall_t1.max(1e-12),
        rps_t_many: total_requests as f64 / wall_t_many.max(1e-12),
        t_many,
        requests: total_requests,
    }
}

/// Measured daemon canary: end-to-end requests/second through the
/// `pandorad` socket path (TCP accept → parse → queue → worker lane →
/// session → canonical JSON), at 1 worker lane and at `w_many`.
#[derive(Debug, Clone)]
pub struct DaemonCanary {
    /// Requests/second with a single worker lane.
    pub rps_w1: f64,
    /// Requests/second with `w_many` worker lanes over the same index.
    pub rps_w_many: f64,
    /// The "many" lane count measured.
    pub w_many: usize,
    /// Total requests answered per measurement.
    pub requests: usize,
}

/// Measures [`DaemonCanary`]: freezes one index, starts a real `Daemon` on
/// an ephemeral port with 1 and then `w_many` worker lanes, and drives the
/// same `w_many` concurrent TCP clients against both (call–response, every
/// client a distinct request stream so nothing coalesces). Every wire
/// reply is asserted byte-identical to the canonical encoding of the
/// in-process `Session::run` result, so the canary measures *correct*
/// serving only. Best of `reps` per lane count.
pub fn daemon_rps(
    points: &PointSet,
    min_pts_mix: &[usize],
    w_many: usize,
    requests_per_client: usize,
    reps: usize,
) -> DaemonCanary {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    use pandora_hdbscan::daemon::{proto, Daemon, DaemonConfig};

    let ceiling = min_pts_mix.iter().copied().max().unwrap_or(2);
    let index = Arc::new(
        DatasetIndex::freeze_with_ctx(ExecCtx::serial(), points.clone(), ceiling)
            .expect("bench dataset freezes"),
    );
    // Per-client request streams: the same minPts mix under a per-client
    // min_cluster_size, so concurrent clients never send identical
    // requests (coalescing would collapse the offered load and the canary
    // would measure the coalescer, not the lanes).
    let clients = w_many.max(1);
    let payloads: Vec<Vec<String>> = (0..clients)
        .map(|c| {
            let mut session = index.session_with_ctx(ExecCtx::serial());
            min_pts_mix
                .iter()
                .map(|&m| {
                    let request = ClusterRequest::new().min_pts(m).min_cluster_size(3 + c);
                    let result = session
                        .run(&request)
                        .expect("bench requests are within the frozen ceiling");
                    proto::cluster_result(&result).to_string()
                })
                .collect()
        })
        .collect();

    let measure = |workers: usize| -> f64 {
        let daemon = Daemon::bind(
            "127.0.0.1:0",
            DaemonConfig::new().workers(workers).queue_depth(256),
        )
        .expect("ephemeral bind");
        daemon
            .registry()
            .register("bench", Arc::clone(&index), false)
            .expect("fresh registry");
        let addr = daemon.local_addr();
        let payloads = &payloads;
        let t = Instant::now();
        std::thread::scope(|scope| {
            for (c, client_payloads) in payloads.iter().enumerate() {
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut writer = stream;
                    let mut line = String::new();
                    for i in 0..requests_per_client {
                        let which = (c + i) % min_pts_mix.len();
                        let id = (c * 100_000 + i) as i64;
                        writeln!(
                            writer,
                            r#"{{"id":{id},"method":"cluster","params":{{"dataset":"bench","min_pts":{},"min_cluster_size":{}}}}}"#,
                            min_pts_mix[which],
                            3 + c
                        )
                        .expect("send");
                        line.clear();
                        reader.read_line(&mut line).expect("recv");
                        // The canonical writer emits exactly
                        // {"id":ID,"result":PAYLOAD} — concatenating avoids
                        // re-parsing the payload (an f32→f64 round trip
                        // would not be byte-comparable).
                        let expected =
                            format!(r#"{{"id":{id},"result":{}}}"#, client_payloads[which]);
                        assert_eq!(
                            line.trim_end(),
                            expected,
                            "client {c} request {i}: daemon diverged from Session::run"
                        );
                    }
                });
            }
        });
        let wall = t.elapsed().as_secs_f64();
        daemon.shutdown();
        daemon.join();
        wall
    };

    let total_requests = clients * requests_per_client;
    let best = |workers: usize| -> f64 {
        let mut wall = f64::INFINITY;
        for _ in 0..reps.max(1) {
            wall = wall.min(measure(workers));
        }
        wall
    };
    let wall_w1 = best(1);
    let wall_w_many = best(w_many);
    DaemonCanary {
        rps_w1: total_requests as f64 / wall_w1.max(1e-12),
        rps_w_many: total_requests as f64 / wall_w_many.max(1e-12),
        w_many,
        requests: total_requests,
    }
}

/// Runs the EMST stage under a serial and a threaded context (best of
/// `reps` runs each) and returns `(serial, threaded, threaded_lanes)`.
///
/// This is the CI "parallelism actually engaged" canary: a regression that
/// silently serializes (or slows) the threaded EMST path shows up as
/// `threaded.total() >= serial.total()` on any multi-core host.
pub fn emst_serial_vs_threaded(
    points: &PointSet,
    min_pts: usize,
    reps: usize,
) -> (EmstTimings, EmstTimings, usize) {
    let best_of = |ctx: &ExecCtx| -> EmstTimings {
        let mut best: Option<EmstTimings> = None;
        for _ in 0..reps.max(1) {
            let run = emst(ctx, points, &EmstParams::with_min_pts(min_pts));
            if best.is_none_or(|b: EmstTimings| run.timings.total() < b.total()) {
                best = Some(run.timings);
            }
        }
        best.expect("at least one rep")
    };
    let serial = best_of(&ExecCtx::serial());
    let threaded_ctx = ExecCtx::threads();
    let lanes = threaded_ctx.lanes();
    let threaded = best_of(&threaded_ctx);
    (serial, threaded, lanes)
}

/// Measured cold-vs-warm EMST canary: wall seconds of a cold one-shot
/// [`emst()`](fn@emst) run (tree build + k-NN + Borůvka, nothing reused) against a
/// warm frozen-index run (substrate paid, scratch pooled, endgame cache
/// primed) over the same points and `min_pts`.
#[derive(Debug, Clone)]
pub struct ColdWarmCanary {
    /// Cold one-shot EMST wall seconds (best of reps).
    pub cold_s: f64,
    /// Warm frozen-index EMST wall seconds (best of reps, after priming).
    pub warm_s: f64,
}

impl ColdWarmCanary {
    /// `cold_s / warm_s` — how much of the round floor the cold path still
    /// pays relative to a fully warm request.
    pub fn ratio(&self) -> f64 {
        self.cold_s / self.warm_s.max(1e-12)
    }
}

/// Measures [`ColdWarmCanary`] on the threaded context: cold = best-of-reps
/// full [`emst()`](fn@emst) (the first-request cost the merge-surviving witnesses
/// attack), warm = best-of-reps [`emst_from_index`] through one primed
/// [`EmstScratch`] (the steady-state serving cost). Edge sets are asserted
/// identical before the timings are trusted.
pub fn emst_cold_vs_warm(points: &PointSet, min_pts: usize, reps: usize) -> ColdWarmCanary {
    let ctx = ExecCtx::threads();
    let mut cold_s = f64::INFINITY;
    let mut cold_edges: Vec<Edge> = Vec::new();
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let run = emst(&ctx, points, &EmstParams::with_min_pts(min_pts));
        let spent = t.elapsed().as_secs_f64();
        if spent < cold_s {
            cold_s = spent;
        }
        cold_edges = run.edges;
    }
    let index = EmstIndex::freeze(&ctx, points.clone(), min_pts.max(1))
        .expect("bench dataset freezes cleanly");
    let mut scratch = EmstScratch::new();
    let _ = emst_from_index(&ctx, &index, min_pts, &mut scratch).expect("priming run"); // warm
    let mut warm_s = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let run = emst_from_index(&ctx, &index, min_pts, &mut scratch).expect("warm run");
        let spent = t.elapsed().as_secs_f64();
        if spent < warm_s {
            warm_s = spent;
        }
        assert_eq!(run.edges.len(), cold_edges.len());
        for (a, b) in run.edges.iter().zip(&cold_edges) {
            assert_eq!(
                (a.u, a.v, a.w.to_bits()),
                (b.u, b.v, b.w.to_bits()),
                "warm index run diverged from the cold path"
            );
        }
    }
    ColdWarmCanary { cold_s, warm_s }
}

/// Measured dendrogram-stage canary: per-phase α-contraction wall times
/// under a serial and a threaded context over the same sorted MST, plus
/// the work-optimal backend raced on both contexts (best of `reps` each;
/// all four runs asserted bit-identical before timings are trusted).
#[derive(Debug, Clone)]
pub struct DendroCanary {
    /// Vertex count of the measured MST.
    pub n: usize,
    /// α-contraction phases on the serial context.
    pub serial: PhaseTimings,
    /// α-contraction phases on the threaded context.
    pub threaded: PhaseTimings,
    /// Work-optimal backend total on the serial context.
    pub wo_serial_s: f64,
    /// Work-optimal backend total on the threaded context.
    pub wo_threaded_s: f64,
    /// Threaded-context lane count.
    pub lanes: usize,
}

impl DendroCanary {
    /// α-contraction serial/threaded speedup.
    pub fn speedup(&self) -> f64 {
        self.serial.total() / self.threaded.total().max(1e-12)
    }
}

/// Measures [`DendroCanary`] on `points`' mutual-reachability MST: one
/// EMST and canonical sort up front (shared by every timed run, so only
/// the dendrogram stage is measured), then each backend × context
/// best-of-reps through a warm [`DendrogramWorkspace`].
///
/// This is the CI "dendrogram parallelism actually engaged" canary,
/// mirroring [`emst_serial_vs_threaded`].
pub fn dendro_serial_vs_threaded(points: &PointSet, min_pts: usize, reps: usize) -> DendroCanary {
    let threaded_ctx = ExecCtx::threads();
    let lanes = threaded_ctx.lanes();
    let result = emst(&threaded_ctx, points, &EmstParams::with_min_pts(min_pts));
    let mst = SortedMst::from_edges(&threaded_ctx, points.len(), &result.edges);

    let best_alpha = |ctx: &ExecCtx| -> (pandora_core::Dendrogram, PhaseTimings) {
        let mut ws = DendrogramWorkspace::new();
        let _ = pandora::dendrogram_from_sorted_with(ctx, &mst, &mut ws); // warm
        let mut best: Option<(pandora_core::Dendrogram, PhaseTimings)> = None;
        for _ in 0..reps.max(1) {
            let (d, stats) = pandora::dendrogram_from_sorted_with(ctx, &mst, &mut ws);
            if best
                .as_ref()
                .is_none_or(|(_, b)| stats.timings.total() < b.total())
            {
                best = Some((d, stats.timings));
            }
        }
        best.expect("at least one rep")
    };
    let best_wo = |ctx: &ExecCtx| -> (pandora_core::Dendrogram, f64) {
        let mut ws = DendrogramWorkspace::new();
        let mut best: Option<(pandora_core::Dendrogram, f64)> = None;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            let (d, _) = DendrogramBackend::WorkOptimal.build(ctx, &mst, &mut ws);
            let spent = t.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|&(_, b)| spent < b) {
                best = Some((d, spent));
            }
        }
        best.expect("at least one rep")
    };

    let serial_ctx = ExecCtx::serial();
    let (d_serial, serial) = best_alpha(&serial_ctx);
    let (d_threaded, threaded) = best_alpha(&threaded_ctx);
    let (d_wo_serial, wo_serial_s) = best_wo(&serial_ctx);
    let (d_wo_threaded, wo_threaded_s) = best_wo(&threaded_ctx);
    assert_eq!(
        d_serial, d_threaded,
        "α-contraction serial/threaded diverged"
    );
    assert_eq!(
        d_serial, d_wo_serial,
        "work-optimal diverged from α-contraction"
    );
    assert_eq!(
        d_wo_serial, d_wo_threaded,
        "work-optimal serial/threaded diverged"
    );

    DendroCanary {
        n: points.len(),
        serial,
        threaded,
        wo_serial_s,
        wo_threaded_s,
        lanes,
    }
}

/// Measured NN-chain canary: Ward-linkage merge construction raced on a
/// serial vs a threaded context over the same points (best of `reps` each;
/// merge lists asserted bit-identical before timings are trusted).
///
/// Ward exercises the matrix-free centroid substrate — the one whose O(n)
/// memory footprint makes NN-chain serving viable at ≥ 20k points, and
/// whose candidate-NN scans are the engine's parallel section — so this is
/// the CI "NN-chain parallelism actually engaged" canary, mirroring
/// [`dendro_serial_vs_threaded`].
#[derive(Debug, Clone)]
pub struct NnchainCanary {
    /// Point count of the measured run.
    pub n: usize,
    /// NN-chain total (init + chain) on the serial context.
    pub serial_s: f64,
    /// NN-chain total (init + chain) on the threaded context.
    pub threaded_s: f64,
    /// Threaded-context lane count.
    pub lanes: usize,
}

impl NnchainCanary {
    /// NN-chain serial/threaded speedup.
    pub fn speedup(&self) -> f64 {
        self.serial_s / self.threaded_s.max(1e-12)
    }
}

/// Measures [`NnchainCanary`]: Ward-linkage NN-chain over Euclidean
/// distances (the serving tier's Ward configuration), best of `reps` per
/// context through a warm [`ScratchPool`], outputs asserted bit-identical
/// across contexts before the timings are returned.
pub fn nnchain_serial_vs_threaded(points: &PointSet, reps: usize) -> NnchainCanary {
    let best_of = |ctx: &ExecCtx| -> (Vec<Edge>, f64) {
        let pool = ScratchPool::new();
        let _ = nnchain_merges(ctx, points, &[], Linkage::Ward, false, &pool); // warm
        let mut best: Option<(Vec<Edge>, f64)> = None;
        for _ in 0..reps.max(1) {
            let run = nnchain_merges(ctx, points, &[], Linkage::Ward, false, &pool);
            let spent = run.init_s + run.chain_s;
            if best.as_ref().is_none_or(|&(_, b)| spent < b) {
                best = Some((run.merges, spent));
            }
        }
        assert_eq!(pool.outstanding(), 0, "NN-chain leaked pool leases");
        best.expect("at least one rep")
    };
    let (m_serial, serial_s) = best_of(&ExecCtx::serial());
    let threaded_ctx = ExecCtx::threads();
    let lanes = threaded_ctx.lanes();
    let (m_threaded, threaded_s) = best_of(&threaded_ctx);
    assert_eq!(m_serial.len(), m_threaded.len());
    for (a, b) in m_serial.iter().zip(&m_threaded) {
        assert_eq!(
            (a.u, a.v, a.w.to_bits()),
            (b.u, b.v, b.w.to_bits()),
            "NN-chain serial/threaded diverged"
        );
    }

    NnchainCanary {
        n: points.len(),
        serial_s,
        threaded_s,
        lanes,
    }
}

/// Writes the `BENCH_ci.json` canary payload: per-phase milliseconds for
/// the serial and threaded EMST runs, the thread count, and (when
/// measured) the engine-sweep-vs-cold-runs amortization, the
/// concurrent-serving throughput (`serve_rps_t1` / `serve_rps_t4`), the
/// dendrogram canary, and the NN-chain canary (`nnchain_*`), as one
/// stable hand-rolled JSON object (no serde in the offline environment).
#[allow(clippy::too_many_arguments)] // one writer for the whole canary file
pub fn write_bench_ci_json(
    path: &str,
    n: usize,
    min_pts: usize,
    serial: &EmstTimings,
    threaded: &EmstTimings,
    lanes: usize,
    engine: Option<&EngineCanary>,
    serve: Option<&ServeCanary>,
    dendro: Option<&DendroCanary>,
    nnchain: Option<&NnchainCanary>,
    daemon: Option<&DaemonCanary>,
    cold: Option<&ColdWarmCanary>,
) -> std::io::Result<()> {
    let phase = |t: &EmstTimings| {
        format!(
            "{{\"build_ms\": {:.3}, \"core_ms\": {:.3}, \"boruvka_ms\": {:.3}, \"emst_ms\": {:.3}}}",
            t.tree_build_s * 1e3,
            t.core_s * 1e3,
            t.boruvka_s * 1e3,
            t.total() * 1e3
        )
    };
    let engine_json = engine.map_or(String::new(), |e| {
        format!(
            ",\n  \"engine\": {{\"sweep_ms\": {:.3}, \"cold_ms\": {:.3}, \"speedup\": {:.3}}}",
            e.sweep_s * 1e3,
            e.cold_s * 1e3,
            e.speedup
        )
    });
    let serve_json = serve.map_or(String::new(), |s| {
        format!(
            ",\n  \"serve_rps_t1\": {:.3},\n  \"serve_rps_t{}\": {:.3},\n  \
             \"serve_requests\": {}",
            s.rps_t1, s.t_many, s.rps_t_many, s.requests
        )
    });
    let dendro_json = dendro.map_or(String::new(), |d| {
        format!(
            ",\n  \"dendro_n\": {},\n  \"dendro_serial_ms\": {:.3},\n  \
             \"dendro_threaded_ms\": {:.3},\n  \
             \"dendro_speedup\": {:.3},\n  \"dendro_wo_serial_ms\": {:.3},\n  \
             \"dendro_wo_threaded_ms\": {:.3}",
            d.n,
            d.serial.total() * 1e3,
            d.threaded.total() * 1e3,
            d.speedup(),
            d.wo_serial_s * 1e3,
            d.wo_threaded_s * 1e3
        )
    });
    let nnchain_json = nnchain.map_or(String::new(), |c| {
        format!(
            ",\n  \"nnchain_n\": {},\n  \"nnchain_serial_ms\": {:.3},\n  \
             \"nnchain_threaded_ms\": {:.3},\n  \"nnchain_speedup\": {:.3}",
            c.n,
            c.serial_s * 1e3,
            c.threaded_s * 1e3,
            c.speedup()
        )
    });
    let daemon_json = daemon.map_or(String::new(), |d| {
        format!(
            ",\n  \"daemon_rps_w1\": {:.3},\n  \"daemon_rps_w{}\": {:.3},\n  \
             \"daemon_requests\": {}",
            d.rps_w1, d.w_many, d.rps_w_many, d.requests
        )
    });
    let cold_json = cold.map_or(String::new(), |c| {
        format!(
            ",\n  \"emst_cold_ms\": {:.3},\n  \"emst_warm_ms\": {:.3},\n  \
             \"emst_cold_warm_ratio\": {:.3}",
            c.cold_s * 1e3,
            c.warm_s * 1e3,
            c.ratio()
        )
    });
    let json = format!(
        "{{\n  \"n\": {n},\n  \"min_pts\": {min_pts},\n  \"threads\": {lanes},\n  \
         \"serial\": {},\n  \"threaded\": {},\n  \"speedup\": {:.3}{engine_json}{serve_json}\
         {dendro_json}{nnchain_json}{daemon_json}{cold_json}\n}}\n",
        phase(serial),
        phase(threaded),
        serial.total() / threaded.total().max(1e-12)
    );
    std::fs::write(path, json)
}

/// Total simulated seconds for a trace on a device.
pub fn project(trace: &Trace, device: &DeviceModel) -> f64 {
    device.simulate(trace).total_s
}

/// Simulated seconds for the trace of a `run_n`-point run, rescaled to a
/// `target_n`-point dataset (paper-scale projection; see
/// [`Trace::scaled`]).
pub fn project_at(trace: &Trace, device: &DeviceModel, run_n: usize, target_n: u64) -> f64 {
    device
        .simulate(&trace.scaled(target_n as f64 / run_n as f64))
        .total_s
}

/// Millions of points per second.
pub fn mpoints(n: usize, seconds: f64) -> f64 {
    n as f64 / seconds / 1e6
}

/// Fixed-width table printer for the figure binaries.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats seconds with sensible units.
pub fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_data::synthetic::uniform;

    #[test]
    fn pipeline_run_produces_traces_and_times() {
        let points = uniform(3000, 2, 1);
        let run = run_pipeline(&points, 2);
        assert_eq!(run.n, 3000);
        assert!(!run.mst_trace.is_empty());
        assert!(!run.pandora_trace.is_empty());
        assert!(!run.ufmt_trace.is_empty());
        assert!(run.pandora_wall.total() > 0.0);
        assert!(run.skew >= 1.0);
        // Device projection: GPU beats the modeled 64-core CPU at scale is
        // not guaranteed at n=3000; just check positivity and phases.
        let gpu = project(&run.pandora_trace, &DeviceModel::a100());
        assert!(gpu > 0.0);
        let phases = run.pandora_trace.phases();
        assert!(phases.contains(&"contraction"));
    }

    #[test]
    fn swept_pipeline_matches_one_shot_runs() {
        let points = uniform(2000, 2, 3);
        let (_prepare_s, runs) = run_pipeline_swept(&points, &[2, 4]);
        assert_eq!(runs.len(), 2);
        for (run, &min_pts) in runs.iter().zip(&[2usize, 4]) {
            let one_shot = run_pipeline(&points, min_pts);
            // Same dendrogram structure (skew is a pure function of it).
            assert_eq!(run.skew, one_shot.skew, "min_pts={min_pts}");
            assert_eq!(run.n_levels, one_shot.n_levels);
            // The merged trace includes the shared substrate phases.
            let phases = run.mst_trace.phases();
            assert!(phases.contains(&"emst_build"), "{phases:?}");
            assert!(phases.contains(&"emst_boruvka"), "{phases:?}");
            // Warm members never rebuild the tree.
            assert_eq!(run.emst_timings.tree_build_s, 0.0);
        }
    }

    #[test]
    fn engine_canary_reports_consistent_results() {
        let points = uniform(1500, 2, 9);
        let canary = engine_vs_cold(&points, &[2, 4], 1);
        assert!(canary.sweep_s > 0.0 && canary.cold_s > 0.0);
        assert!(canary.speedup > 0.0);
    }

    #[test]
    fn serve_canary_measures_both_thread_counts() {
        // Small volume: the point is the machinery (threads spawn, every
        // answer verified bit-identical inside serve_wall_s), not the
        // throughput numbers themselves.
        let points = uniform(800, 2, 5);
        let canary = serve_throughput(&points, &[2, 4], 2, 2, 1);
        assert_eq!(canary.t_many, 2);
        assert_eq!(canary.requests, 4);
        assert!(canary.rps_t1 > 0.0 && canary.rps_t_many > 0.0);
    }

    #[test]
    fn nnchain_canary_verifies_before_timing() {
        // Small n: the point is the machinery (warm pool, bit-identity
        // asserted across contexts inside), not the speedup number.
        let points = uniform(600, 2, 7);
        let canary = nnchain_serial_vs_threaded(&points, 1);
        assert_eq!(canary.n, 600);
        assert!(canary.serial_s > 0.0 && canary.threaded_s > 0.0);
        assert!(canary.speedup() > 0.0);
        assert!(canary.lanes >= 1);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt_s(2.0), "2.00s");
        assert_eq!(fmt_s(0.002), "2.00ms");
    }
}
