//! # pandora-bench
//!
//! The harness that regenerates every table and figure of the PANDORA
//! paper's evaluation (§6). Each figure has a dedicated binary (see
//! `src/bin/`); criterion micro/meso benchmarks live in `benches/`.
//!
//! Measurement policy (DESIGN.md §2): algorithmic comparisons and CPU phase
//! breakdowns are **real measurements** on this host; the paper's 64-core /
//! GPU series are **modeled** by replaying the kernel traces of the real
//! runs through the device models in `pandora_exec::device`. Every printed
//! table marks each column `measured` or `modeled`.

pub mod harness;
pub mod suite;

pub use harness::{project, run_pipeline, PipelineRun};
pub use suite::{bench_scale, fig11_suite, fig12_suite, FigDataset};
