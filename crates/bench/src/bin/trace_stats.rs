//! Calibration helper: prints per-phase, per-kernel-kind element totals of a
//! real PANDORA run, so the device-model rates can be fit to the paper's
//! published phase fractions and speedups (EXPERIMENTS.md §calibration).

use pandora_bench::harness::run_pipeline;
use pandora_bench::suite::bench_scale;
use pandora_data::by_name;

fn main() {
    let n = bench_scale();
    let points = by_name("Hacc37M").expect("registry").generate(n, 42);
    let run = run_pipeline(&points, 2);
    println!("n = {} points, {} contraction levels", run.n, run.n_levels);

    for (label, trace) in [
        ("mst", &run.mst_trace),
        ("pandora(all)", &run.pandora_trace),
        ("ufmt", &run.ufmt_trace),
    ] {
        println!("\n--- {label}: {} kernel launches ---", trace.len());
        for phase in trace.phases() {
            let sub = trace.phase(phase);
            println!("  phase {phase}: {} launches", sub.len());
            for (kind, total, count) in sub.kind_totals() {
                println!(
                    "    {kind:?}: {count} launches, {total} elems ({:.2} per point)",
                    total as f64 / run.n as f64
                );
            }
        }
    }
}
