//! **Figure 11**: dendrogram-construction throughput (MPoints/s) across the
//! dataset suite for:
//!
//! * UnionFind-MT on the 64-core EPYC (the paper's baseline),
//! * PANDORA on the 64-core EPYC,
//! * PANDORA on an MI250X GCD,
//! * PANDORA on an A100.
//!
//! Paper result: multithreaded PANDORA is 0.66–2.2× UnionFind-MT; MI250X is
//! 6–20× and A100 10–37× over multithreaded PANDORA. Device columns are
//! modeled from real traces; the two host-measured columns show the same
//! comparison on this machine's cores.

use pandora_bench::harness::{mpoints, print_table, project_at, run_pipeline};
use pandora_bench::suite::{bench_scale, fig11_suite};
use pandora_exec::device::DeviceModel;

fn main() {
    let n = bench_scale();
    println!("Figure 11 reproduction — dendrogram throughput, n ≈ {n} per dataset");
    let epyc = DeviceModel::epyc_7a53_64c();
    let mi250x = DeviceModel::mi250x_gcd();
    let a100 = DeviceModel::a100();

    let mut rows = Vec::new();
    for ds in fig11_suite() {
        let points = ds.generate(n, 2024);
        let run = run_pipeline(&points, 2);
        let np = run.n;

        // Modeled devices at the paper's dataset size (kernel mix from the
        // real run, element counts rescaled — DESIGN.md §2).
        let target = ds.spec().paper_npts;
        let tn = target as usize;
        let uf_epyc = mpoints(tn, project_at(&run.ufmt_trace, &epyc, np, target));
        let pan_epyc = mpoints(tn, project_at(&run.pandora_trace, &epyc, np, target));
        let pan_mi = mpoints(tn, project_at(&run.pandora_trace, &mi250x, np, target));
        let pan_a100 = mpoints(tn, project_at(&run.pandora_trace, &a100, np, target));

        // Host-measured (this machine).
        let uf_host = mpoints(np, run.ufmt_wall.0 + run.ufmt_wall.1);
        let pan_host = mpoints(np, run.pandora_wall.total());

        rows.push(vec![
            ds.label.to_string(),
            format!("{:.0}", run.skew),
            format!("{uf_epyc:.0}"),
            format!("{pan_epyc:.0}"),
            format!("{pan_mi:.0}"),
            format!("{pan_a100:.0}"),
            format!("{:.1}x", pan_mi / pan_epyc),
            format!("{:.1}x", pan_a100 / pan_epyc),
            format!("{uf_host:.1}"),
            format!("{pan_host:.1}"),
        ]);
    }
    print_table(
        "Fig 11 — MPoints/s (modeled EPYC-64c/MI250X/A100 from real traces; host = measured)",
        &[
            "dataset",
            "Imb",
            "UF(EPYC)",
            "PAN(EPYC)",
            "PAN(MI250X)",
            "PAN(A100)",
            "MI/EPYC",
            "A100/EPYC",
            "UF(host)",
            "PAN(host)",
        ],
        &rows,
    );
    println!(
        "\npaper bands: UF(EPYC) 6–18, PAN(EPYC) 14–30, PAN(MI250X) 62–302, \
         PAN(A100) 62–419 MPoints/s; GPU/CPU 6–20x (MI250X), 10–37x (A100)."
    );
}
