//! **Figure 1**: time taken by the HDBSCAN\* components (Euclidean MST and
//! dendrogram) on the Hacc37M dataset under three configurations:
//!
//! 1. CPU only (64-core EPYC);
//! 2. MST on GPU + dendrogram on CPU (the pre-PANDORA status quo, where the
//!    dendrogram takes 86% of the time);
//! 3. MST on GPU + dendrogram on GPU (PANDORA — dendrogram drops to ~26%).
//!
//! Device times are modeled by replaying real kernel traces (DESIGN.md §2);
//! the host-measured times are printed for reference.

use pandora_bench::harness::{
    daemon_rps, dendro_serial_vs_threaded, emst_cold_vs_warm, emst_serial_vs_threaded,
    engine_vs_cold, fmt_s, nnchain_serial_vs_threaded, print_table, project_at, run_pipeline,
    serve_throughput, write_bench_ci_json,
};
use pandora_bench::suite::bench_scale;
use pandora_data::by_name;
use pandora_exec::device::DeviceModel;

fn main() {
    let n = bench_scale();
    let spec = by_name("Hacc37M").expect("registry");
    println!(
        "Figure 1 reproduction — Hacc37M proxy (Soneira-Peebles), n = {n} \
         (paper: n = {})",
        spec.paper_npts
    );
    let points = spec.generate(n, 42);
    let run = run_pipeline(&points, 2);

    let cpu = DeviceModel::epyc_7a53_64c();
    let gpu = DeviceModel::mi250x_gcd();

    // Modeled stage times, projected at the paper's dataset size (the
    // kernel mix comes from the real run; see Trace::scaled).
    let target = spec.paper_npts;
    let mst_cpu = project_at(&run.mst_trace, &cpu, run.n, target);
    let mst_gpu = project_at(&run.mst_trace, &gpu, run.n, target);
    let dendro_cpu_ufmt = project_at(&run.ufmt_trace, &cpu, run.n, target);
    let dendro_gpu_pandora = project_at(&run.pandora_trace, &gpu, run.n, target);

    let total1 = mst_cpu + dendro_cpu_ufmt;
    let total2 = mst_gpu + dendro_cpu_ufmt;
    let total3 = mst_gpu + dendro_gpu_pandora;

    print_table(
        "Fig 1 — HDBSCAN* stage times at paper scale (modeled from real kernel traces)",
        &[
            "configuration",
            "MST",
            "dendrogram",
            "total",
            "dendro %",
            "speedup",
        ],
        &[
            vec![
                "CPU (EPYC 64c)".into(),
                fmt_s(mst_cpu),
                fmt_s(dendro_cpu_ufmt),
                fmt_s(total1),
                format!("{:.0}%", 100.0 * dendro_cpu_ufmt / total1),
                "1.0x".into(),
            ],
            vec![
                "MST(GPU) + dendro(CPU)".into(),
                fmt_s(mst_gpu),
                fmt_s(dendro_cpu_ufmt),
                fmt_s(total2),
                format!("{:.0}%", 100.0 * dendro_cpu_ufmt / total2),
                format!("{:.1}x", total1 / total2),
            ],
            vec![
                "MST(GPU) + dendro(GPU, PANDORA)".into(),
                fmt_s(mst_gpu),
                fmt_s(dendro_gpu_pandora),
                fmt_s(total3),
                format!("{:.0}%", 100.0 * dendro_gpu_pandora / total3),
                format!("{:.1}x", total1 / total3),
            ],
        ],
    );
    println!(
        "\npaper: config 2 is 5.4x over config 1; config 3 is 17.6x; \
         dendrogram share drops 86% → 26%."
    );

    print_table(
        "Reference — measured on this host (real wall clock)",
        &["stage", "time"],
        &[
            vec![
                "EMST (kd-tree + core + Borůvka)".into(),
                fmt_s(run.mst_wall_s),
            ],
            vec![
                "  EMST: kd-tree build".into(),
                fmt_s(run.emst_timings.tree_build_s),
            ],
            vec![
                "  EMST: core distances".into(),
                fmt_s(run.emst_timings.core_s),
            ],
            vec!["  EMST: Borůvka".into(), fmt_s(run.emst_timings.boruvka_s)],
            vec!["PANDORA dendrogram".into(), fmt_s(run.pandora_wall.total())],
            vec![
                "UnionFind-MT dendrogram".into(),
                fmt_s(run.ufmt_wall.0 + run.ufmt_wall.1),
            ],
        ],
    );

    // CI bench canary: with PANDORA_BENCH_JSON=<path>, run the EMST stage
    // under both execution contexts, persist the per-phase numbers, and —
    // with PANDORA_BENCH_ENFORCE=1 — fail the process if the threaded EMST
    // is slower than the serial one (parallelism silently disengaged).
    if let Ok(json_path) = std::env::var("PANDORA_BENCH_JSON") {
        let (serial, threaded, lanes) = emst_serial_vs_threaded(&points, 2, 3);
        // Engine canary: a warm sweep over the paper's mpts set must beat
        // the same requests served cold (it amortizes the kd-tree build,
        // the k-NN pass and every stage buffer, and carries endgame bounds
        // across runs — with bit-identical results, asserted inside).
        let sweep = [2usize, 4, 8, 16];
        let engine = engine_vs_cold(&points, &sweep, 2);
        // Serving canary: the same shared-index request mix answered by 1
        // and by 4 serving threads (per-thread sessions, serial stage
        // dispatch). Every answer is asserted bit-identical to the
        // one-shot pipeline inside the harness.
        let serve = serve_throughput(&points, &sweep, 4, 4, 3);
        // Dendrogram canary: α-contraction serial vs threaded (and the
        // work-optimal backend raced on both contexts), measured over one
        // shared sorted MST; bit-identical outputs asserted inside. The
        // dendrogram stage is measured at ≥ 20k vertices regardless of
        // PANDORA_SCALE: below that the whole stage fits in a couple of
        // dispatch grains and the comparison only measures broadcast
        // overhead, not the parallel contraction.
        let dendro_points = if n >= 20_000 {
            points.clone()
        } else {
            spec.generate(20_000, 42)
        };
        let dendro = dendro_serial_vs_threaded(&dendro_points, 2, 5);
        // NN-chain canary: Ward-linkage merges raced serial vs threaded at
        // the same ≥ 20k floor (the centroid substrate's candidate-NN
        // scans are the parallel section; bit-identical outputs asserted
        // inside the harness).
        let nnchain = nnchain_serial_vs_threaded(&dendro_points, 3);
        // Daemon canary: the serve mix again, but end to end through the
        // `pandorad` socket path (TCP, JSON parse, queue, worker lanes),
        // at 1 vs 4 worker lanes with 4 concurrent clients. Every wire
        // reply is asserted byte-identical to the in-process result
        // inside the harness.
        let daemon = daemon_rps(&points, &sweep, 4, 6, 2);
        // Cold-run canary: the first-request EMST cost (nothing reused —
        // the round floor the merge-surviving witnesses attack) against a
        // fully warm frozen-index request, bit-identical edges asserted
        // inside the harness.
        let cold = emst_cold_vs_warm(&points, 2, 3);
        write_bench_ci_json(
            &json_path,
            n,
            2,
            &serial,
            &threaded,
            lanes,
            Some(&engine),
            Some(&serve),
            Some(&dendro),
            Some(&nnchain),
            Some(&daemon),
            Some(&cold),
        )
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
        let speedup = serial.total() / threaded.total().max(1e-12);
        print_table(
            &format!("CI canary — serial vs threaded EMST ({lanes} lanes, best of 3)"),
            &["context", "build", "core", "Borůvka", "total"],
            &[
                vec![
                    "serial".into(),
                    fmt_s(serial.tree_build_s),
                    fmt_s(serial.core_s),
                    fmt_s(serial.boruvka_s),
                    fmt_s(serial.total()),
                ],
                vec![
                    "threaded".into(),
                    fmt_s(threaded.tree_build_s),
                    fmt_s(threaded.core_s),
                    fmt_s(threaded.boruvka_s),
                    fmt_s(threaded.total()),
                ],
            ],
        );
        println!("\nthreaded speedup: {speedup:.2}x (written to {json_path})");
        println!(
            "engine canary — sweep over mpts {sweep:?}: {:.1} ms vs {:.1} ms cold \
             ({:.2}x amortization)",
            engine.sweep_s * 1e3,
            engine.cold_s * 1e3,
            engine.speedup
        );
        println!(
            "serving canary — {} requests over one shared index: \
             {:.1} req/s at 1 thread, {:.1} req/s at {} threads ({:.2}x)",
            serve.requests,
            serve.rps_t1,
            serve.rps_t_many,
            serve.t_many,
            serve.rps_t_many / serve.rps_t1.max(1e-12)
        );
        println!(
            "dendro canary (n = {}) — α-contraction {:.1} ms serial vs {:.1} ms threaded \
             ({:.2}x); work-optimal {:.1} ms serial vs {:.1} ms threaded",
            dendro.n,
            dendro.serial.total() * 1e3,
            dendro.threaded.total() * 1e3,
            dendro.speedup(),
            dendro.wo_serial_s * 1e3,
            dendro.wo_threaded_s * 1e3,
        );
        println!(
            "nnchain canary (n = {}) — Ward NN-chain {:.1} ms serial vs {:.1} ms threaded \
             ({:.2}x)",
            nnchain.n,
            nnchain.serial_s * 1e3,
            nnchain.threaded_s * 1e3,
            nnchain.speedup(),
        );
        // PANDORA_BENCH_MIN_SPEEDUP raises the bar above "not slower"
        // (default 1.0): a silently-serialized path measures ~1.0x ± noise,
        // so a knife-edge comparison would flake in both directions on a
        // busy runner. Requiring a real margin (CI uses 1.1, with genuine
        // parallelism measuring ≥ ~2x) keeps the canary deterministic.
        let enforce = std::env::var("PANDORA_BENCH_ENFORCE").is_ok_and(|v| v == "1");
        let min_speedup = std::env::var("PANDORA_BENCH_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        if enforce && speedup < min_speedup {
            eprintln!(
                "FAIL: threaded EMST ({:.1} ms) vs serial ({:.1} ms) is only \
                 {speedup:.2}x on {lanes} lanes (required ≥ {min_speedup:.2}x) \
                 — parallelism is not engaging",
                threaded.total() * 1e3,
                serial.total() * 1e3,
            );
            std::process::exit(1);
        }
        // Engine canary bar: the warm sweep must beat the cold runs by a
        // real margin (CI uses 1.2; the measured amortization at 20k points
        // is ~2.5x, so a pass is far from the noise floor while any
        // regression that de-amortizes the engine lands well below it).
        let min_engine_speedup = std::env::var("PANDORA_BENCH_MIN_ENGINE_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        if enforce && engine.speedup < min_engine_speedup {
            eprintln!(
                "FAIL: engine sweep ({:.1} ms) vs cold runs ({:.1} ms) is only \
                 {:.2}x (required ≥ {min_engine_speedup:.2}x) — the engine \
                 stopped amortizing the shared substrate",
                engine.sweep_s * 1e3,
                engine.cold_s * 1e3,
                engine.speedup,
            );
            std::process::exit(1);
        }
        // Serving bar: 4 threads over one shared index must not serve
        // fewer requests/second than 1 thread (PANDORA_BENCH_MIN_SERVE_RATIO
        // defaults to that knife edge; on a multi-core runner request-level
        // parallelism measures ~Tx, far from the noise floor, so any index
        // contention regression — an accidental lock on the read path, a
        // session pool serializing requests — lands well below the bar).
        let min_serve_ratio = std::env::var("PANDORA_BENCH_MIN_SERVE_RATIO")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        let serve_ratio = serve.rps_t_many / serve.rps_t1.max(1e-12);
        if enforce && serve_ratio < min_serve_ratio {
            eprintln!(
                "FAIL: {}-thread serving ({:.1} req/s) vs 1-thread ({:.1} req/s) is \
                 only {serve_ratio:.2}x (required ≥ {min_serve_ratio:.2}x) — \
                 concurrent sessions are contending on the shared index",
                serve.t_many, serve.rps_t_many, serve.rps_t1,
            );
            std::process::exit(1);
        }
        // Dendrogram bar: the threaded α-contraction must never be slower
        // than the serial one (PANDORA_BENCH_MIN_DENDRO_SPEEDUP defaults to
        // that knife edge; best-of-5 per side keeps the comparison out of
        // the scheduler noise — a regression that serializes the stage
        // measures well below 1.0 once broadcast overhead is being paid
        // for nothing).
        let min_dendro_speedup = std::env::var("PANDORA_BENCH_MIN_DENDRO_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        if enforce && dendro.speedup() < min_dendro_speedup {
            eprintln!(
                "FAIL: threaded α-contraction ({:.1} ms) vs serial ({:.1} ms) is only \
                 {:.2}x on {} lanes (required ≥ {min_dendro_speedup:.2}x) — dendrogram \
                 parallelism is not engaging",
                dendro.threaded.total() * 1e3,
                dendro.serial.total() * 1e3,
                dendro.speedup(),
                dendro.lanes,
            );
            std::process::exit(1);
        }
        // NN-chain bar: the threaded Ward NN-chain must never be slower
        // than the serial one at ≥ 20k points
        // (PANDORA_BENCH_MIN_NNCHAIN_SPEEDUP defaults to that knife edge;
        // best-of-3 per side through a warm scratch pool keeps the
        // comparison out of scheduler noise — a regression that serializes
        // the candidate-NN scans pays broadcast overhead for nothing and
        // measures well below 1.0).
        let min_nnchain_speedup = std::env::var("PANDORA_BENCH_MIN_NNCHAIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        if enforce && nnchain.speedup() < min_nnchain_speedup {
            eprintln!(
                "FAIL: threaded NN-chain ({:.1} ms) vs serial ({:.1} ms) is only \
                 {:.2}x on {} lanes (required ≥ {min_nnchain_speedup:.2}x) — NN-chain \
                 parallelism is not engaging",
                nnchain.threaded_s * 1e3,
                nnchain.serial_s * 1e3,
                nnchain.speedup(),
                nnchain.lanes,
            );
            std::process::exit(1);
        }
        println!(
            "daemon canary — {} requests through the socket path: \
             {:.1} req/s at 1 worker lane, {:.1} req/s at {} lanes ({:.2}x)",
            daemon.requests,
            daemon.rps_w1,
            daemon.rps_w_many,
            daemon.w_many,
            daemon.rps_w_many / daemon.rps_w1.max(1e-12)
        );
        // Daemon bar: 4 worker lanes through the full socket path must
        // beat 1 lane by a real margin (CI uses 1.5; request-level
        // parallelism on a multi-core runner measures ~Tx, so the bar is
        // far above noise while any regression that serializes the lanes —
        // a lock across Session::run, a single-threaded queue drain —
        // lands well below it).
        let min_daemon_ratio = std::env::var("PANDORA_BENCH_MIN_DAEMON_RATIO")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        let daemon_ratio = daemon.rps_w_many / daemon.rps_w1.max(1e-12);
        if enforce && daemon_ratio < min_daemon_ratio {
            eprintln!(
                "FAIL: {}-lane daemon ({:.1} req/s) vs 1-lane ({:.1} req/s) is only \
                 {daemon_ratio:.2}x through the socket path (required ≥ \
                 {min_daemon_ratio:.2}x) — daemon worker lanes are not engaging",
                daemon.w_many, daemon.rps_w_many, daemon.rps_w1,
            );
            std::process::exit(1);
        }
        println!(
            "cold-run canary — cold one-shot EMST {:.1} ms vs warm index run {:.1} ms \
             ({:.1}x round floor)",
            cold.cold_s * 1e3,
            cold.warm_s * 1e3,
            cold.ratio()
        );
        // Cold-run bars (absolute + ratio), only enforced when set: the
        // witness rebuild's win is an absolute cold-path budget in
        // milliseconds at the CI scale (PANDORA_BENCH_MAX_COLD_EMST_MS) and
        // a bound on how much of the round floor the cold path may still
        // pay over a warm request (PANDORA_BENCH_MAX_COLD_WARM_RATIO).
        // Budgets are host- and scale-specific, so there is no meaningful
        // default — CI pins both for its container.
        let max_cold_ms = std::env::var("PANDORA_BENCH_MAX_COLD_EMST_MS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok());
        if let Some(max_ms) = max_cold_ms {
            if enforce && cold.cold_s * 1e3 > max_ms {
                eprintln!(
                    "FAIL: cold one-shot EMST took {:.1} ms at n = {n} (budget \
                     {max_ms:.1} ms) — the cold-path round floor regressed",
                    cold.cold_s * 1e3,
                );
                std::process::exit(1);
            }
        }
        let max_cold_warm_ratio = std::env::var("PANDORA_BENCH_MAX_COLD_WARM_RATIO")
            .ok()
            .and_then(|v| v.parse::<f64>().ok());
        if let Some(max_ratio) = max_cold_warm_ratio {
            if enforce && cold.ratio() > max_ratio {
                eprintln!(
                    "FAIL: cold EMST ({:.1} ms) pays {:.1}x over a warm index run \
                     ({:.1} ms), budget {max_ratio:.1}x — the cold path stopped \
                     benefiting from the witness machinery",
                    cold.cold_s * 1e3,
                    cold.ratio(),
                    cold.warm_s * 1e3,
                );
                std::process::exit(1);
            }
        }
    }
}
