//! Structural statistics behind the paper's §4.2 accounting, per dataset:
//! per-level leaf/chain/α censuses (checking the `n_leaf = n_α + 1`
//! identity and the `n_α ≤ (n−1)/2` bound), contraction level counts
//! against the `⌈log₂(n+1)⌉` bound, and dendrogram chain-length profiles
//! (the skew mechanism of §3.1.3).

use pandora_bench::harness::print_table;
use pandora_bench::suite::{bench_scale, fig12_suite};
use pandora_core::census::{chain_lengths, hierarchy_census};
use pandora_core::levels::build_hierarchy;
use pandora_core::{pandora, SortedMst};
use pandora_exec::ExecCtx;
use pandora_mst::{emst, EmstParams};

fn main() {
    let n = bench_scale();
    println!("PANDORA structural statistics (paper §3.1.3 / §4.2), n ≈ {n}");
    let ctx = ExecCtx::threads();

    let mut rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 9);
        let edges = emst(&ctx, &points, &EmstParams::default()).edges;
        let mst = SortedMst::from_edges(&ctx, points.len(), &edges);

        let hierarchy = build_hierarchy(&ctx, &mst);
        let censuses = hierarchy_census(&ctx, &hierarchy);
        for (l, c) in censuses.iter().enumerate() {
            assert!(
                c.leaf_alpha_identity_holds(),
                "{}: level {l} violates n_leaf = n_alpha + 1",
                ds.label
            );
        }
        let level0 = censuses[0];
        let (dendro, stats) = pandora::dendrogram_from_sorted(&ctx, &mst);
        let chains = chain_lengths(&dendro);
        let n_edges = mst.n_edges();
        let bound = (n_edges as f64 + 1.0).log2().ceil() as usize;
        rows.push(vec![
            ds.label.to_string(),
            format!("{n_edges}"),
            format!("{}", level0.n_leaf),
            format!("{}", level0.n_chain),
            format!("{}", level0.n_alpha),
            format!("{:.2}", level0.n_alpha as f64 / n_edges as f64),
            format!("{}/{bound}", stats.n_levels),
            format!("{}", chains.len()),
            format!("{}", chains.last().copied().unwrap_or(0)),
            format!("{:.0}", dendro.skewness()),
        ]);
    }
    print_table(
        "Level-0 census + hierarchy stats (all measured)",
        &[
            "dataset",
            "edges",
            "leaf",
            "chain",
            "alpha",
            "alpha/n",
            "levels/bound",
            "#chains",
            "longest",
            "Imb",
        ],
        &rows,
    );
    println!(
        "\nchecks enforced: n_leaf = n_α + 1 at every level (paper §4.2 \
         identity); α/n ≤ 0.5 (the bound giving ⌈log₂(n+1)⌉ levels); chain \
         counts explain the skew — few, long chains = high Imb."
    );
}
