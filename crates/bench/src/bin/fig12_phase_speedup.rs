//! **Figure 12**: speedup of the MI250X over the 64-core EPYC for each
//! phase of HDBSCAN\* with PANDORA: `mst`, `dendrogram` (total), `sort`,
//! `contraction`, `expansion`.
//!
//! Paper result: sorting scales best (10–20×), multilevel contraction worst
//! (3–5×), total dendrogram 6–16×. All columns are modeled from real traces.

use pandora_bench::harness::{
    dendro_serial_vs_threaded, emst_serial_vs_threaded, fmt_s, print_table, run_pipeline,
};
use pandora_bench::suite::{bench_scale, fig12_suite};
use pandora_exec::device::DeviceModel;
use pandora_exec::ExecCtx;

fn main() {
    let n = bench_scale();
    println!("Figure 12 reproduction — per-phase MI250X/EPYC-64c speedup, n ≈ {n}");
    let epyc = DeviceModel::epyc_7a53_64c();
    let gpu = DeviceModel::mi250x_gcd();

    let mut rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let run = run_pipeline(&points, 2);
        // Project at the paper's dataset size so launch latency does not
        // mask the asymptotic per-phase behaviour (paper measures at 10⁶–10⁸).
        let factor = ds.spec().paper_npts as f64 / run.n as f64;

        let speedup = |trace: &pandora_exec::trace::Trace| -> f64 {
            let scaled = trace.scaled(factor);
            epyc.simulate(&scaled).total_s / gpu.simulate(&scaled).total_s
        };
        let phase_speedup = |phase: &str| -> f64 {
            let t = run.pandora_trace.phase(phase);
            if t.is_empty() {
                return f64::NAN;
            }
            speedup(&t)
        };

        let dendro = speedup(&run.pandora_trace);
        rows.push(vec![
            ds.label.to_string(),
            format!("{:.1}x", speedup(&run.mst_trace)),
            format!("{dendro:.1}x"),
            format!("{:.1}x", phase_speedup("sort")),
            format!("{:.1}x", phase_speedup("contraction")),
            format!("{:.1}x", phase_speedup("expansion")),
        ]);
    }
    print_table(
        "Fig 12 — modeled speedup (MI250X over EPYC 64c) per phase",
        &[
            "dataset",
            "mst",
            "dendrogram",
            "sort",
            "contraction",
            "expansion",
        ],
        &rows,
    );
    println!(
        "\npaper: mst 5–16x, dendrogram 3–13x, sort 9–16x, contraction 3–5x, \
         expansion 5–12x. Shape to check: sort scales best, contraction worst."
    );

    // Host-measured EMST phase speedup: serial vs threaded wall clock on
    // THIS machine (the modeled columns above project onto paper hardware).
    let lanes = ExecCtx::threads().lanes();
    let mut host_rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let (serial, threaded, _) = emst_serial_vs_threaded(&points, 2, 2);
        let ratio = |s: f64, t: f64| format!("{:.2}x", s / t.max(1e-12));
        host_rows.push(vec![
            ds.label.to_string(),
            ratio(serial.tree_build_s, threaded.tree_build_s),
            ratio(serial.core_s, threaded.core_s),
            ratio(serial.boruvka_s, threaded.boruvka_s),
            ratio(serial.total(), threaded.total()),
        ]);
    }
    print_table(
        &format!("EMST phase speedup measured on this host ({lanes} lanes, best of 2)"),
        &["dataset", "build", "core", "Borůvka", "EMST total"],
        &host_rows,
    );

    // Host-measured dendrogram backend race: α-contraction per-phase
    // serial/threaded speedup, with the work-optimal backend (Dhulipala
    // et al.) on the same sorted MST. Outputs are asserted bit-identical
    // inside the harness before any timing is reported.
    let mut dendro_rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let d = dendro_serial_vs_threaded(&points, 2, 3);
        let ratio = |s: f64, t: f64| format!("{:.2}x", s / t.max(1e-12));
        dendro_rows.push(vec![
            ds.label.to_string(),
            ratio(d.serial.sort_s, d.threaded.sort_s),
            ratio(d.serial.contraction_s, d.threaded.contraction_s),
            ratio(d.serial.expansion_s, d.threaded.expansion_s),
            format!("{:.2}x", d.speedup()),
            fmt_s(d.threaded.total()),
            ratio(d.wo_serial_s, d.wo_threaded_s),
            fmt_s(d.wo_threaded_s),
        ]);
    }
    print_table(
        &format!(
            "Dendrogram backends measured on this host ({lanes} lanes, best of 3): \
             α-contraction vs work-optimal"
        ),
        &[
            "dataset",
            "α sort",
            "α contr",
            "α expan",
            "α total",
            "α thr wall",
            "WO total",
            "WO thr wall",
        ],
        &dendro_rows,
    );
}
