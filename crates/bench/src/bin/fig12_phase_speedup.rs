//! **Figure 12**: speedup of the MI250X over the 64-core EPYC for each
//! phase of HDBSCAN\* with PANDORA: `mst`, `dendrogram` (total), `sort`,
//! `contraction`, `expansion`.
//!
//! Paper result: sorting scales best (10–20×), multilevel contraction worst
//! (3–5×), total dendrogram 6–16×. All columns are modeled from real traces.

use pandora_bench::harness::{print_table, run_pipeline};
use pandora_bench::suite::{bench_scale, fig12_suite};
use pandora_exec::device::DeviceModel;

fn main() {
    let n = bench_scale();
    println!("Figure 12 reproduction — per-phase MI250X/EPYC-64c speedup, n ≈ {n}");
    let epyc = DeviceModel::epyc_7a53_64c();
    let gpu = DeviceModel::mi250x_gcd();

    let mut rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let run = run_pipeline(&points, 2);
        // Project at the paper's dataset size so launch latency does not
        // mask the asymptotic per-phase behaviour (paper measures at 10⁶–10⁸).
        let factor = ds.spec().paper_npts as f64 / run.n as f64;

        let speedup = |trace: &pandora_exec::trace::Trace| -> f64 {
            let scaled = trace.scaled(factor);
            epyc.simulate(&scaled).total_s / gpu.simulate(&scaled).total_s
        };
        let phase_speedup = |phase: &str| -> f64 {
            let t = run.pandora_trace.phase(phase);
            if t.is_empty() {
                return f64::NAN;
            }
            speedup(&t)
        };

        let dendro = speedup(&run.pandora_trace);
        rows.push(vec![
            ds.label.to_string(),
            format!("{:.1}x", speedup(&run.mst_trace)),
            format!("{dendro:.1}x"),
            format!("{:.1}x", phase_speedup("sort")),
            format!("{:.1}x", phase_speedup("contraction")),
            format!("{:.1}x", phase_speedup("expansion")),
        ]);
    }
    print_table(
        "Fig 12 — modeled speedup (MI250X over EPYC 64c) per phase",
        &[
            "dataset",
            "mst",
            "dendrogram",
            "sort",
            "contraction",
            "expansion",
        ],
        &rows,
    );
    println!(
        "\npaper: mst 5–16x, dendrogram 3–13x, sort 9–16x, contraction 3–5x, \
         expansion 5–12x. Shape to check: sort scales best, contraction worst."
    );
}
