//! **Figure 15**: HDBSCAN\* total time (MST + dendrogram) and dendrogram
//! time for `mpts` ∈ {2, 4, 8, 16} on Hacc37M and Uniform100M3D:
//! the multithreaded CPU baseline (MemoGFK-style: parallel EMST + UnionFind
//! dendrogram, modeled on EPYC 7763) vs. the GPU pipeline (EMST + PANDORA,
//! modeled on MI250X).
//!
//! Paper result: the GPU pipeline is 8–12× faster end-to-end; dendrogram
//! alone 17–33×. Rising `mpts` grows PANDORA's dendrogram time only
//! 1.1–1.5× (vs 1.6–2.4× for UnionFind-MT), while EMST grows for both.
//!
//! The sweep itself runs the way the paper's study implies it should be
//! served: through one engine substrate per dataset
//! ([`pandora_bench::harness::run_pipeline_swept`]) — the kd-tree is built
//! once, a single k-NN pass at `max(mpts)` yields every member's core
//! distances by prefix, and all stage buffers are recycled. The measured
//! amortization against four cold one-shot runs is printed per dataset.

use pandora_bench::harness::{engine_vs_cold, fmt_s, print_table, project_at, run_pipeline_swept};
use pandora_bench::suite::bench_scale;
use pandora_data::by_name;
use pandora_exec::device::DeviceModel;

fn main() {
    let n = bench_scale();
    println!("Figure 15 reproduction — HDBSCAN* vs mpts, n ≈ {n}");
    let cpu = DeviceModel::epyc_7763_64c();
    let gpu = DeviceModel::mi250x_gcd();
    let sweep = [2usize, 4, 8, 16];

    for name in ["Hacc37M", "Uniform100M3D"] {
        let spec = by_name(name).expect("registry");
        let points = spec.generate(n, 13);
        let (prepare_s, runs) = run_pipeline_swept(&points, &sweep);
        let mut rows = Vec::new();
        let mut dendro_t_first: Option<(f64, f64)> = None;
        let mut dendro_t_last = (0.0, 0.0);
        for (run, &mpts) in runs.iter().zip(&sweep) {
            let target = spec.paper_npts;
            let mst_cpu = project_at(&run.mst_trace, &cpu, run.n, target);
            let mst_gpu = project_at(&run.mst_trace, &gpu, run.n, target);
            let den_cpu = project_at(&run.ufmt_trace, &cpu, run.n, target);
            let den_gpu = project_at(&run.pandora_trace, &gpu, run.n, target);
            let total_cpu = mst_cpu + den_cpu;
            let total_gpu = mst_gpu + den_gpu;
            if dendro_t_first.is_none() {
                dendro_t_first = Some((den_cpu, den_gpu));
            }
            dendro_t_last = (den_cpu, den_gpu);

            rows.push(vec![
                format!("{mpts}"),
                fmt_s(total_cpu),
                fmt_s(total_gpu),
                fmt_s(den_cpu),
                fmt_s(den_gpu),
                format!("{:.1}x", total_cpu / total_gpu),
                format!("{:.1}x", den_cpu / den_gpu),
            ]);
        }
        print_table(
            &format!("Fig 15 — {name} (modeled EPYC-7763 CPU vs MI250X GPU)"),
            &[
                "mpts",
                "Ttotal(CPU)",
                "Ttotal(GPU)",
                "Tdendro(CPU)",
                "Tdendro(GPU)",
                "total speedup",
                "dendro speedup",
            ],
            &rows,
        );
        let first = dendro_t_first.unwrap();
        println!(
            "dendrogram growth mpts 2→16: CPU(UF-MT) {:.2}x, GPU(PANDORA) {:.2}x \
             (paper: 1.6–2.4x vs 1.1–1.5x)",
            dendro_t_last.0 / first.0,
            dendro_t_last.1 / first.1
        );
        let canary = engine_vs_cold(&points, &sweep, 1);
        println!(
            "engine amortization — shared substrate {} (build + k-NN at max mpts), \
             sweep {} vs four cold runs {}: {:.2}x, identical results",
            fmt_s(prepare_s),
            fmt_s(canary.sweep_s),
            fmt_s(canary.cold_s),
            canary.speedup
        );
    }
    println!("\npaper: total 8–12x, dendrogram 17–33x GPU over CPU baseline.");
}
