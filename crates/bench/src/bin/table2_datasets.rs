//! **Table 2**: the evaluation datasets with their dendrogram skew.
//!
//! Regenerates every row with the scaled proxy generators and measures the
//! actual `Imb` (dendrogram height / log₂ n) of the mutual-reachability
//! dendrogram at `minPts = 2`, next to the paper's reported values.

use pandora_bench::harness::print_table;
use pandora_bench::suite::bench_scale;
use pandora_core::pandora;
use pandora_data::all_datasets;
use pandora_exec::ExecCtx;
use pandora_mst::{emst, EmstParams};

fn main() {
    let n = bench_scale();
    println!("Table 2 reproduction — proxies at n ≈ {n} (PANDORA_SCALE to change)");
    let ctx = ExecCtx::threads();
    let mut rows = Vec::new();
    for spec in all_datasets() {
        let points = spec.generate(n, 7);
        let edges = emst(&ctx, &points, &EmstParams::default()).edges;
        let dendro = pandora::dendrogram(&ctx, points.len(), &edges);
        rows.push(vec![
            spec.name.to_string(),
            spec.dim.to_string(),
            points.len().to_string(),
            format!("{:.0}", dendro.skewness()),
            format!("{:.0e}", spec.paper_imb),
            format!("{}", spec.paper_npts),
            spec.desc.to_string(),
        ]);
    }
    print_table(
        "Table 2 — datasets (measured Imb at scaled n vs paper Imb at full n)",
        &[
            "Name",
            "Dim",
            "n (here)",
            "Imb (here)",
            "Imb (paper)",
            "n (paper)",
            "Desc",
        ],
        &rows,
    );
    println!(
        "\nNote: Imb grows with n for skewed data (chains lengthen linearly, \
         log n slowly), so scaled-down proxies report proportionally smaller \
         Imb; the ordering across datasets is the comparable signal."
    );
}
