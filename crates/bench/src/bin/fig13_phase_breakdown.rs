//! **Figure 13**: fraction of PANDORA's CPU time spent in each phase
//! (`sort`, `contraction`, `expansion`).
//!
//! Paper result (EPYC 7A53): sort 67–85%, contraction 12–22%, expansion
//! 3–10%. This binary reports **real measured** fractions on this host's
//! cores — phase fractions are a ratio, so they transfer across core counts
//! far better than absolute times — plus the modeled EPYC-64c fractions.

use pandora_bench::harness::{fmt_s, print_table, run_pipeline};
use pandora_bench::suite::{bench_scale, fig12_suite};
use pandora_core::{DendrogramBackend, DendrogramWorkspace, SortedMst};
use pandora_exec::device::DeviceModel;
use pandora_exec::ExecCtx;
use pandora_mst::{emst, EmstParams};

fn main() {
    let n = bench_scale();
    println!("Figure 13 reproduction — PANDORA phase breakdown, n ≈ {n}");
    let epyc = DeviceModel::epyc_7a53_64c();

    // The figure orders datasets differently from Fig 12; same six members.
    let mut rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let run = run_pipeline(&points, 2);
        let w = run.pandora_wall;
        let total = w.total();

        // Paper-scale projection for the modeled column (launch overheads
        // vanish at 10⁶⁺ points, as on the paper's testbed).
        let factor = ds.spec().paper_npts as f64 / run.n as f64;
        let sim = epyc.simulate(&run.pandora_trace.scaled(factor));
        let m_total = sim.total_s;
        let m_frac = |phase: &str| sim.phase_s(phase) / m_total;

        rows.push(vec![
            ds.label.to_string(),
            format!("{:.2}", w.sort_s / total),
            format!("{:.2}", w.contraction_s / total),
            format!("{:.2}", w.expansion_s / total),
            format!("{:.2}", m_frac("sort")),
            format!("{:.2}", m_frac("contraction")),
            format!("{:.2}", m_frac("expansion")),
        ]);
    }
    print_table(
        "Fig 13 — time fraction per phase (host = measured; EPYC-64c = modeled)",
        &[
            "dataset",
            "sort(host)",
            "contr(host)",
            "expan(host)",
            "sort(EPYC)",
            "contr(EPYC)",
            "expan(EPYC)",
        ],
        &rows,
    );
    println!(
        "\npaper (EPYC 7A53): sort 0.67–0.85, contraction 0.12–0.22, \
         expansion 0.03–0.10."
    );

    // Backend race, per-phase wall clock on this host (threaded context):
    // PANDORA's α-contraction vs the work-optimal rank divide-and-conquer.
    // The work-optimal backend has no chain sort (sort = 0 by design); its
    // "contraction" is the rank-split phase, "expansion" the leaf passes.
    let ctx = ExecCtx::threads();
    let mut race_rows = Vec::new();
    for ds in fig12_suite() {
        let points = ds.generate(n, 5);
        let result = emst(&ctx, &points, &EmstParams::with_min_pts(2));
        let mst = SortedMst::from_edges(&ctx, points.len(), &result.edges);
        let mut ws = DendrogramWorkspace::new();
        let mut row = vec![ds.label.to_string()];
        let mut dendros = Vec::new();
        for backend in DendrogramBackend::ALL {
            let (d, stats) = backend.build(&ctx, &mst, &mut ws);
            let t = stats.timings;
            row.push(fmt_s(t.sort_s));
            row.push(fmt_s(t.contraction_s));
            row.push(fmt_s(t.expansion_s));
            row.push(fmt_s(t.total()));
            dendros.push(d);
        }
        assert!(
            dendros.windows(2).all(|w| w[0] == w[1]),
            "backends diverged on {}",
            ds.label
        );
        race_rows.push(row);
    }
    print_table(
        &format!(
            "Backend race on this host ({} lanes): α-contraction vs work-optimal, per phase",
            ctx.lanes()
        ),
        &[
            "dataset",
            "α sort",
            "α contr",
            "α expan",
            "α total",
            "WO sort",
            "WO split",
            "WO leaves",
            "WO total",
        ],
        &race_rows,
    );
}
