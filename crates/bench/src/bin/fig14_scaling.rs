//! **Figure 14**: dendrogram throughput vs. sample count for `Hacc497M` and
//! `Normal300M2`: UnionFind-MT on a 64-core EPYC 7763 vs. PANDORA on an
//! MI250X GCD.
//!
//! Paper shape: UnionFind-MT peaks immediately and slowly decays; PANDORA
//! on GPU starts launch-latency-bound, crosses UnionFind-MT around 3·10⁴
//! samples and saturates around 10⁶. Device columns are modeled from real
//! traces of runs at each sample size (random subsamples of the dataset, as
//! in the paper).

use pandora_bench::harness::{mpoints, print_table, project, run_pipeline};
use pandora_data::by_name;
use pandora_exec::device::DeviceModel;
use pandora_mst::PointSet;
use rand::prelude::*;

fn subsample(points: &PointSet, n: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<u32> = (0..points.len() as u32).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n);
    points.select(&idx)
}

fn main() {
    let max_n: usize = std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120_000);
    let sizes: Vec<usize> = [
        1_000usize, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000,
    ]
    .into_iter()
    .filter(|&s| s <= max_n)
    .collect();
    println!(
        "Figure 14 reproduction — throughput vs sample count (max n = {max_n}, \
         PANDORA_SCALE to raise)"
    );
    let cpu = DeviceModel::epyc_7763_64c();
    let gpu = DeviceModel::mi250x_gcd();

    for name in ["Hacc497M", "Normal300M2D"] {
        let spec = by_name(name).expect("registry");
        let full = spec.generate(max_n, 31);
        let mut rows = Vec::new();
        let mut crossover: Option<f64> = None;
        let mut prev: Option<(f64, f64, f64)> = None; // (n, uf, pan)
        for &s in &sizes {
            let pts = subsample(&full, s.min(full.len()), 77);
            let run = run_pipeline(&pts, 2);
            let uf_cpu = mpoints(run.n, project(&run.ufmt_trace, &cpu));
            let pan_gpu = mpoints(run.n, project(&run.pandora_trace, &gpu));
            if crossover.is_none() && pan_gpu >= uf_cpu {
                // Log-linear interpolation of the crossing point.
                crossover = Some(match prev {
                    Some((n0, uf0, pan0)) => {
                        let gap0 = uf0 - pan0;
                        let gap1 = uf_cpu - pan_gpu;
                        let t = if (gap0 - gap1).abs() > 1e-12 {
                            gap0 / (gap0 - gap1)
                        } else {
                            1.0
                        };
                        (n0.ln() + t * ((run.n as f64).ln() - n0.ln())).exp()
                    }
                    None => run.n as f64,
                });
            }
            prev = Some((run.n as f64, uf_cpu, pan_gpu));
            rows.push(vec![
                run.n.to_string(),
                format!("{uf_cpu:.1}"),
                format!("{pan_gpu:.1}"),
                format!("{:.1}", mpoints(run.n, run.ufmt_wall.0 + run.ufmt_wall.1)),
                format!("{:.1}", mpoints(run.n, run.pandora_wall.total())),
            ]);
        }
        print_table(
            &format!(
                "Fig 14 — {name}: MPoints/s vs samples (modeled UF-CPU / PANDORA-GPU; host measured)"
            ),
            &["samples", "UF(EPYC7763)", "PAN(MI250X)", "UF(host)", "PAN(host)"],
            &rows,
        );
        match crossover {
            Some(s) => println!("modeled crossover at ≈ {s:.0} samples (paper: ≈ 30 000)"),
            None => println!("no crossover within the tested range"),
        }
    }
    println!(
        "\npaper shape: UF peaks immediately then decays; PANDORA-GPU rises \
         with n, crosses UF at ~3·10⁴, saturates near 10⁶."
    );
}
