//! Dataset suites used by the figure binaries, matching the paper's figures.

use pandora_data::{by_name, DatasetSpec};
use pandora_mst::PointSet;

/// A dataset as labelled in a paper figure, bound to its Table 2 generator.
#[derive(Debug, Clone, Copy)]
pub struct FigDataset {
    /// Label used in the figure (the paper abbreviates Table 2 names).
    pub label: &'static str,
    /// Table 2 name it resolves to.
    pub table2_name: &'static str,
}

impl FigDataset {
    /// The Table 2 spec.
    pub fn spec(&self) -> DatasetSpec {
        by_name(self.table2_name).unwrap_or_else(|| panic!("unknown dataset {}", self.table2_name))
    }

    /// Generates the scaled instance.
    pub fn generate(&self, n: usize, seed: u64) -> PointSet {
        self.spec().generate(n, seed)
    }
}

const FD: fn(&'static str, &'static str) -> FigDataset =
    |label, table2_name| FigDataset { label, table2_name };

/// The ten datasets of Figure 11, in the figure's order.
pub fn fig11_suite() -> Vec<FigDataset> {
    vec![
        FD("RoadNetwork3D", "RoadNetwork3"),
        FD("Normal100M2", "Normal100M2D"),
        FD("Uniform100M3", "Uniform100M3D"),
        FD("pamap24D", "Pamap2"),
        FD("farm5D", "Farm"),
        FD("Household2M7D", "Household"),
        FD("VisualSim10M5D", "VisualSim10M5D"),
        FD("VisualVar10M3D", "VisualVar10M3D"),
        FD("Ngsimlocation3", "Ngsimlocation3"),
        FD("Hacc37M", "Hacc37M"),
    ]
}

/// The six datasets of Figures 12 and 13, in the figures' order.
pub fn fig12_suite() -> Vec<FigDataset> {
    vec![
        FD("Normal100M2", "Normal100M2D"),
        FD("Hacc37M", "Hacc37M"),
        FD("Uniform100M3", "Uniform100M3D"),
        FD("pamap24D", "Pamap2"),
        FD("farm5D", "Farm"),
        FD("VisualSim10M5D", "VisualSim10M5D"),
    ]
}

/// Per-dataset point count for the figure binaries.
///
/// Controlled by `PANDORA_SCALE` (points, default 40 000) so the harness
/// fits any host; the paper's original sizes are reported alongside.
pub fn bench_scale() -> usize {
    std::env::var("PANDORA_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_resolve() {
        for d in fig11_suite().iter().chain(fig12_suite().iter()) {
            let spec = d.spec();
            let ps = d.generate(1000, 1);
            assert_eq!(ps.dim(), spec.dim, "{}", d.label);
        }
    }
}
