//! # pandora
//!
//! A from-scratch Rust reproduction of **PANDORA** (Sao, Prokopenko,
//! Lebrun-Grandié, ICPP 2024): a work-optimal, fully parallel algorithm for
//! constructing single-linkage dendrograms from minimum spanning trees, and
//! the full HDBSCAN\* stack built around it.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`exec`] — parallel execution substrate (thread pool, parallel
//!   for/reduce/scan, sorts, lock-free union-find, device cost models);
//! * [`core`] — the PANDORA dendrogram algorithm and its baselines;
//! * [`mst`] — kd-tree, k-nearest-neighbour and Borůvka Euclidean MST;
//! * [`data`] — synthetic dataset generators mirroring the paper's Table 2;
//! * [`hdbscan`] — HDBSCAN\* pipeline (condensed tree, stability extraction).
//!
//! ## Quickstart
//!
//! ```
//! use pandora::hdbscan::{Hdbscan, HdbscanParams};
//! use pandora::mst::PointSet;
//!
//! // Three tight 2-D blobs.
//! let mut coords = Vec::new();
//! for c in 0..3 {
//!     for i in 0..50 {
//!         let (cx, cy) = (c as f32 * 10.0, c as f32 * -7.0);
//!         coords.push(cx + (i % 7) as f32 * 0.01);
//!         coords.push(cy + (i / 7) as f32 * 0.01);
//!     }
//! }
//! let points = PointSet::new(coords, 2);
//! let result = Hdbscan::new(HdbscanParams::default()).run(&points);
//! assert_eq!(result.n_clusters(), 3);
//!
//! // Serving the same dataset repeatedly (e.g. a minPts sweep)? Hold an
//! // engine: one kd-tree build + one k-NN pass amortize across every run,
//! // with bit-identical results.
//! let mut engine = Hdbscan::new(HdbscanParams::default()).engine(&points);
//! for r in engine.sweep_min_pts(&[2, 4, 8]) {
//!     assert_eq!(r.n_clusters(), 3);
//! }
//! ```

pub use pandora_core as core;
pub use pandora_data as data;
pub use pandora_exec as exec;
pub use pandora_hdbscan as hdbscan;
pub use pandora_mst as mst;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pandora_core::pandora::{dendrogram, dendrogram_with_stats};
    pub use pandora_core::{Dendrogram, Edge, SortedMst};
    pub use pandora_exec::ExecCtx;
    pub use pandora_hdbscan::{Hdbscan, HdbscanEngine, HdbscanParams, HdbscanResult};
    pub use pandora_mst::{
        boruvka_mst, core_distances2, Euclidean, KdTree, MutualReachability, PointSet,
    };
}
