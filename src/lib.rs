//! # pandora
//!
//! A from-scratch Rust reproduction of **PANDORA** (Sao, Prokopenko,
//! Lebrun-Grandié, ICPP 2024): a work-optimal, fully parallel algorithm for
//! constructing single-linkage dendrograms from minimum spanning trees, and
//! the full HDBSCAN\* stack built around it.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`exec`] — parallel execution substrate (thread pool, parallel
//!   for/reduce/scan, sorts, lock-free union-find, device cost models);
//! * [`core`] — the PANDORA dendrogram algorithm and its baselines;
//! * [`mst`] — kd-tree, k-nearest-neighbour and Borůvka Euclidean MST;
//! * [`data`] — synthetic dataset generators mirroring the paper's Table 2;
//! * [`hdbscan`] — HDBSCAN\* pipeline (condensed tree, stability extraction).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use pandora::hdbscan::{ClusterRequest, DatasetIndex};
//! use pandora::mst::PointSet;
//!
//! // Three tight 2-D blobs.
//! let mut coords = Vec::new();
//! for c in 0..3 {
//!     for i in 0..50 {
//!         let (cx, cy) = (c as f32 * 10.0, c as f32 * -7.0);
//!         coords.push(cx + (i % 7) as f32 * 0.01);
//!         coords.push(cy + (i / 7) as f32 * 0.01);
//!     }
//! }
//!
//! // Serving tier 1: validate + freeze the dataset once (kd-tree, AoSoA
//! // leaf blocks, sorted k-NN rows for every minPts ≤ 8). Immutable and
//! // Send + Sync — share the Arc with every serving thread.
//! let points = PointSet::try_new(coords, 2)?;
//! let index = Arc::new(DatasetIndex::freeze(points, 8)?);
//!
//! // Serving tier 2: one cheap Session per in-flight request stream.
//! let mut session = index.session();
//! for min_pts in [2usize, 4, 8] {
//!     let result = session.run(&ClusterRequest::new().min_pts(min_pts))?;
//!     assert_eq!(result.n_clusters(), 3);
//! }
//!
//! // Bad requests come back as errors, never panics.
//! assert!(session.run(&ClusterRequest::new().min_pts(0)).is_err());
//! # Ok::<(), pandora::mst::PandoraError>(())
//! ```
//!
//! The one-shot driver ([`hdbscan::Hdbscan::run`]) and the sequential
//! sweep engine ([`hdbscan::Hdbscan::engine`]) remain as thin wrappers
//! over the same two tiers, with bit-identical results.

pub use pandora_core as core;
pub use pandora_data as data;
pub use pandora_exec as exec;
pub use pandora_hdbscan as hdbscan;
pub use pandora_mst as mst;

/// The most commonly used items in one import.
pub mod prelude {
    pub use pandora_core::pandora::{dendrogram, dendrogram_with_stats};
    pub use pandora_core::{Dendrogram, Edge, SortedMst};
    pub use pandora_exec::ExecCtx;
    pub use pandora_hdbscan::{
        ClusterRequest, DatasetIndex, DendrogramBackend, Hdbscan, HdbscanEngine, HdbscanParams,
        HdbscanResult, Session,
    };
    pub use pandora_mst::{
        boruvka_mst, core_distances2, EmstIndex, EmstScratch, Euclidean, KdTree, Linkage,
        MetricKind, MutualReachability, PandoraError, PointSet,
    };
}
