//! `pandora-cli` — command-line interface to the pandora stack.
//!
//! ```text
//! pandora-cli hdbscan  <points.csv|.bin> [--min-pts N] [--min-cluster-size N] [--out labels.csv]
//! pandora-cli cut      <points.csv|.bin> --epsilon E [--out labels.csv]
//! pandora-cli generate <dataset-name> <n> <out.bin|.csv> [--seed S]
//! pandora-cli info     <points.csv|.bin>
//! pandora-cli datasets
//! ```
//!
//! Points files: headerless CSV (one point per row) or the crate's binary
//! format (`pandora::data::io`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pandora::data::{all_datasets, by_name, io as pio};
use pandora::hdbscan::{dbscan_star, Hdbscan, HdbscanParams};
use pandora::mst::PointSet;

fn load_points(path: &Path) -> Result<PointSet, String> {
    let loaded = if path.extension().is_some_and(|e| e == "csv") {
        pio::load_csv(path)
    } else {
        pio::load(path)
    };
    loaded.map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn write_labels(labels: &[i32], out: Option<PathBuf>) -> Result<(), String> {
    use std::io::Write;
    match out {
        Some(path) => {
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            );
            for l in labels {
                writeln!(f, "{l}").map_err(|e| e.to_string())?;
            }
            println!("wrote {} labels to {}", labels.len(), path.display());
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for l in labels {
                writeln!(lock, "{l}").map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// Minimal flag parser: `--key value` pairs after positional args.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Self { positional, flags })
    }

    fn flag<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }
}

fn cmd_hdbscan(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .first()
        .ok_or("usage: pandora-cli hdbscan <points> [--min-pts N] [--min-cluster-size N]")?;
    let points = load_points(Path::new(input))?;
    let params = HdbscanParams {
        min_pts: args.flag("min-pts")?.unwrap_or(2),
        min_cluster_size: args.flag("min-cluster-size")?.unwrap_or(5),
        allow_single_cluster: args.flag::<bool>("allow-single-cluster")?.unwrap_or(false),
    };
    eprintln!(
        "HDBSCAN* on {} points ({}D), minPts={}, minClusterSize={}",
        points.len(),
        points.dim(),
        params.min_pts,
        params.min_cluster_size
    );
    let result = Hdbscan::new(params).run(&points);
    eprintln!(
        "{} clusters, {} noise | emst {:.1}ms, dendrogram {:.1}ms (skew {:.0}), extract {:.1}ms",
        result.n_clusters(),
        result.n_noise(),
        result.timings.emst_s() * 1e3,
        result.timings.dendrogram_s * 1e3,
        result.dendrogram.skewness(),
        result.timings.extract_s * 1e3,
    );
    write_labels(&result.labels, args.flag::<PathBuf>("out")?)
}

fn cmd_cut(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .first()
        .ok_or("usage: pandora-cli cut <points> --epsilon E")?;
    let epsilon: f32 = args
        .flag("epsilon")?
        .ok_or("cut requires --epsilon <distance>")?;
    let points = load_points(Path::new(input))?;
    let result = Hdbscan::new(HdbscanParams::default()).run(&points);
    let labels = dbscan_star(&result, epsilon);
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let noise = labels.iter().filter(|&&l| l == -1).count();
    eprintln!("DBSCAN* at ε={epsilon}: {k} clusters, {noise} noise");
    write_labels(&labels, args.flag::<PathBuf>("out")?)
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let [name, n, out] = args.positional.as_slice() else {
        return Err("usage: pandora-cli generate <dataset> <n> <out.bin|.csv> [--seed S]".into());
    };
    let spec = by_name(name).ok_or_else(|| {
        format!("unknown dataset {name}; run `pandora-cli datasets` for the list")
    })?;
    let n: usize = n.parse().map_err(|_| format!("invalid n: {n}"))?;
    let seed: u64 = args.flag("seed")?.unwrap_or(42);
    let points = spec.generate(n, seed);
    let out = Path::new(out);
    let write_result = if out.extension().is_some_and(|e| e == "csv") {
        pio::save_csv(&points, out)
    } else {
        pio::save(&points, out)
    };
    write_result.map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "generated {} points of {} ({}D) → {}",
        points.len(),
        spec.name,
        points.dim(),
        out.display()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .first()
        .ok_or("usage: pandora-cli info <points>")?;
    let points = load_points(Path::new(input))?;
    println!("points: {}", points.len());
    println!("dim:    {}", points.dim());
    for d in 0..points.dim() {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for i in 0..points.len() {
            let c = points.point(i)[d];
            lo = lo.min(c);
            hi = hi.max(c);
        }
        println!("dim {d}: [{lo}, {hi}]");
    }
    Ok(())
}

fn cmd_datasets() -> Result<(), String> {
    println!(
        "{:<16} {:>3} {:>12} {:>10}  description",
        "name", "dim", "paper n", "paper Imb"
    );
    for spec in all_datasets() {
        println!(
            "{:<16} {:>3} {:>12} {:>10.0e}  {}",
            spec.name, spec.dim, spec.paper_npts, spec.paper_imb, spec.desc
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        eprintln!(
            "pandora-cli — single-linkage / HDBSCAN* clustering (PANDORA reproduction)\n\
             commands: hdbscan, cut, generate, info, datasets"
        );
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "hdbscan" => cmd_hdbscan(&args),
        "cut" => cmd_cut(&args),
        "generate" => cmd_generate(&args),
        "info" => cmd_info(&args),
        "datasets" => cmd_datasets(),
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
