//! `pandorad` — the long-running serving daemon over the Session API.
//!
//! ```text
//! pandorad [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!          [--load name=points.csv|.bin]...
//! pandorad --stdio [--load name=path]...
//! ```
//!
//! Speaks newline-delimited JSON-RPC (methods `load`, `cluster`, `sweep`,
//! `stats`, `shutdown`) over TCP, or over stdin/stdout with `--stdio` for
//! scripting. Protocol reference and operations runbook: `docs/SERVING.md`.
//!
//! Environment: `PANDORA_THREADS` sizes the default worker-lane count,
//! `PANDORA_QUEUE_DEPTH` the default admission queue,
//! `PANDORA_LINKAGE` / `PANDORA_DENDROGRAM` the per-request defaults
//! applied when a request omits those fields.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use pandora::data::io as pio;
use pandora::hdbscan::daemon::{serve_once, Daemon, DaemonConfig, DatasetRegistry};
use pandora::hdbscan::DatasetIndex;
use pandora::mst::PointSet;

const DEFAULT_ADDR: &str = "127.0.0.1:7462";
const PRELOAD_MAX_MIN_PTS: usize = 16;

struct Args {
    addr: String,
    stdio: bool,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    /// `name=path` preloads, in order.
    loads: Vec<(String, String)>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: DEFAULT_ADDR.to_string(),
        stdio: false,
        workers: None,
        queue_depth: None,
        loads: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |key: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag --{key} needs a value"))
        };
        match a.as_str() {
            "--stdio" => args.stdio = true,
            "--addr" => args.addr = value("addr")?,
            "--workers" => {
                let v = value("workers")?;
                args.workers = Some(v.parse().map_err(|_| format!("invalid --workers: {v}"))?);
            }
            "--queue-depth" => {
                let v = value("queue-depth")?;
                args.queue_depth = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --queue-depth: {v}"))?,
                );
            }
            "--load" => {
                let v = value("load")?;
                let (name, path) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--load expects name=path, got: {v}"))?;
                if name.is_empty() || path.is_empty() {
                    return Err(format!("--load expects name=path, got: {v}"));
                }
                args.loads.push((name.to_string(), path.to_string()));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument: {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: pandorad [--addr HOST:PORT] [--workers N] [--queue-depth N] \
     [--load name=points.csv|.bin]...\n       pandorad --stdio [--load name=path]...\n\
     protocol reference: docs/SERVING.md"
        .to_string()
}

fn load_points(path: &Path) -> Result<PointSet, String> {
    let loaded = if path.extension().is_some_and(|e| e == "csv") {
        pio::load_csv(path)
    } else {
        pio::load(path)
    };
    loaded.map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Freezes each `--load name=path` dataset into `registry`.
fn preload(registry: &DatasetRegistry, loads: &[(String, String)]) -> Result<(), String> {
    for (name, path) in loads {
        let points = load_points(Path::new(path))?;
        let (n, dim) = (points.len(), points.dim());
        let max_min_pts = PRELOAD_MAX_MIN_PTS.min(n.max(1));
        let index = DatasetIndex::freeze(points, max_min_pts)
            .map_err(|e| format!("cannot freeze {path}: {e}"))?;
        registry
            .register(name, Arc::new(index), false)
            .map_err(|e| format!("cannot register {name}: {}", e.message))?;
        eprintln!("pandorad: loaded {name} ({n} points, {dim}D, max_min_pts {max_min_pts})");
    }
    Ok(())
}

fn config(args: &Args) -> DaemonConfig {
    let mut config = DaemonConfig::new();
    if let Some(workers) = args.workers {
        config = config.workers(workers);
    }
    if let Some(depth) = args.queue_depth {
        config = config.queue_depth(depth);
    }
    config
}

fn run(args: &Args) -> Result<(), String> {
    if args.stdio {
        let registry = DatasetRegistry::new();
        preload(&registry, &args.loads)?;
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        serve_once(config(args), registry, stdin.lock(), stdout.lock());
        return Ok(());
    }
    let daemon = Daemon::bind(args.addr.as_str(), config(args))
        .map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    preload(daemon.registry(), &args.loads)?;
    eprintln!("pandorad: listening on {}", daemon.local_addr());
    // Blocks until a wire `shutdown` request arrives, then drains.
    daemon.join();
    eprintln!("pandorad: shut down");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
